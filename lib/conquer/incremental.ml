open Dirty

module Rtbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i =
      i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1))
    in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end)

let m_refreshes =
  Telemetry.Metrics.counter "conquer.incremental.refreshes"
    ~help:"incremental view refreshes (fallbacks included)"

let m_fallbacks =
  Telemetry.Metrics.counter "conquer.incremental.fallbacks"
    ~help:"view refreshes that fell back to full re-execution"

type stats = { s_touched : int; s_affected : int; s_fallback : string option }

type t = {
  sql : string;
  items : Sql.Ast.select_item list;
  relations : (string * string * Dirty_schema.table_info) list;
      (** alias, table name, id/prob attributes — in FROM order *)
  rewritten : Sql.Ast.query;
  witness : Sql.Ast.query;
      (** the ungrouped rewriting: answer columns then one cluster-id
          column per FROM relation *)
  localizable : bool;
  mutable session : Clean.session;
  mutable answers : Relation.t;
  index : (string * string, unit Rtbl.t) Hashtbl.t;
      (** (table, cluster id as printed) -> answer groups it reached *)
}

let answers t = t.answers
let sql t = t.sql
let num_answer_cols t = List.length t.items

let index_key table cluster = (table, Value.to_string cluster)

let index_add t key group =
  let groups =
    match Hashtbl.find_opt t.index key with
    | Some g -> g
    | None ->
      let g = Rtbl.create 8 in
      Hashtbl.add t.index key g;
      g
  in
  if not (Rtbl.mem groups group) then Rtbl.replace groups group ()

(* scan a witness relation (answer columns followed by one cluster id
   per relation) into the provenance index; [each_group] additionally
   receives every group key seen *)
let index_scan t rel ~each_group =
  let n = num_answer_cols t in
  Relation.iter
    (fun row ->
      let group = Array.sub row 0 n in
      each_group group;
      List.iteri
        (fun i (_, table, _) -> index_add t (index_key table row.(n + i)) group)
        t.relations)
    rel

let run_witness ?config t ~where =
  let q = { t.witness with where } in
  Engine.Database.query_ast ?config (Clean.engine t.session) q

let conj a b =
  match a with None -> Some b | Some a -> Some (Sql.Ast.Binop (And, a, b))

let materialize_query ?config session (q : Sql.Ast.query) =
  let sql = Sql.Pretty.query_to_string q in
  let env = Clean.env session in
  (match Rewritable.check env q with
  | Ok _ -> ()
  | Error vs -> raise (Rewrite.Not_rewritable vs));
  let items =
    match q.select with
    | Items items -> items
    | Star -> invalid_arg "Incremental.materialize: SELECT * not supported"
  in
  let relations =
    List.map
      (fun (r : Sql.Ast.table_ref) ->
        let alias = Option.value ~default:r.table r.t_alias in
        let info = Option.get (env.Dirty_schema.info_of r.table) in
        (alias, r.table, info))
      q.from
  in
  let witness_items =
    List.map
      (fun (alias, _, (info : Dirty_schema.table_info)) ->
        ({ expr = Sql.Ast.Col { table = Some alias; name = info.id_attr };
           alias = None }
          : Sql.Ast.select_item))
      relations
  in
  let witness =
    {
      q with
      select = Items (items @ witness_items);
      group_by = [];
      order_by = [];
      limit = None;
      distinct = false;
    }
  in
  let rewritten = Rewrite.rewrite_exn env q in
  let localizable =
    q.order_by = [] && q.limit = None && not q.distinct
  in
  let t =
    {
      sql;
      items;
      relations;
      rewritten;
      witness;
      localizable;
      session;
      answers = Engine.Database.query_ast ?config (Clean.engine session) rewritten;
      index = Hashtbl.create 256;
    }
  in
  index_scan t (run_witness ?config t ~where:q.where) ~each_group:(fun _ -> ());
  t

let materialize ?config session sql =
  materialize_query ?config session (Sql.Parser.parse_query sql)

let full_refresh ?config t reason ~touched =
  Telemetry.Metrics.inc m_fallbacks;
  t.answers <-
    Engine.Database.query_ast ?config (Clean.engine t.session) t.rewritten;
  Hashtbl.reset t.index;
  index_scan t
    (run_witness ?config t ~where:t.witness.where)
    ~each_group:(fun _ -> ());
  {
    s_touched = touched;
    s_affected = Relation.cardinality t.answers;
    s_fallback = Some reason;
  }

(* one conjunct per answer column: NULL keys need IS NULL, Eq would
   never match them *)
let group_conjunct t group =
  List.mapi
    (fun i (item : Sql.Ast.select_item) ->
      if Value.is_null group.(i) then Sql.Ast.Is_null item.expr
      else Sql.Ast.Binop (Eq, item.expr, Lit group.(i)))
    t.items
  |> function
  | [] -> invalid_arg "Incremental: no answer columns"
  | c :: cs -> List.fold_left (fun acc c -> Sql.Ast.Binop (And, acc, c)) c cs

let group_predicate t affected =
  Rtbl.fold (fun g () acc -> group_conjunct t g :: acc) affected []
  |> function
  | [] -> assert false
  | d :: ds -> List.fold_left (fun acc d -> Sql.Ast.Binop (Or, acc, d)) d ds

(* splice recomputed group rows into the materialized relation:
   affected groups are replaced in place (or dropped when they
   vanished); groups new to the view append in recomputation order *)
let splice t recomputed affected =
  let n = num_answer_cols t in
  let key row = Array.sub row 0 n in
  let fresh = Rtbl.create 16 in
  let fresh_order = ref [] in
  Relation.iter
    (fun row ->
      let k = key row in
      if not (Rtbl.mem fresh k) then begin
        Rtbl.replace fresh k row;
        fresh_order := k :: !fresh_order
      end)
    recomputed;
  let emitted = Rtbl.create 16 in
  let kept =
    Relation.fold
      (fun acc row ->
        let k = key row in
        if Rtbl.mem affected k then (
          match Rtbl.find_opt fresh k with
          | Some row' ->
            Rtbl.replace emitted k ();
            row' :: acc
          | None -> acc (* the group vanished *))
        else row :: acc)
      [] t.answers
  in
  let appended =
    List.fold_left
      (fun acc k ->
        if Rtbl.mem emitted k then acc else Rtbl.find fresh k :: acc)
      [] !fresh_order
    (* fresh_order is reversed; folding it reversed restores order *)
  in
  t.answers <-
    Relation.create (Relation.schema t.answers) (List.rev kept @ appended)

let refresh ?config ?(max_affected = 256) t session ~touched =
  Telemetry.Metrics.inc m_refreshes;
  Telemetry.Span.with_ ~name:"incremental.refresh" @@ fun () ->
  t.session <- session;
  let relevant =
    List.filter
      (fun (tbl, _) ->
        List.exists (fun (_, tn, _) -> String.equal tn tbl) t.relations)
      touched
  in
  let n_touched = List.length relevant in
  if relevant = [] then { s_touched = 0; s_affected = 0; s_fallback = None }
  else if not t.localizable then
    full_refresh ?config t "order-by/limit/distinct" ~touched:n_touched
  else begin
    (* groups the touched clusters contributed to in any past state *)
    let affected = Rtbl.create 64 in
    List.iter
      (fun (tbl, c) ->
        match Hashtbl.find_opt t.index (index_key tbl c) with
        | Some groups -> Rtbl.iter (fun g () -> Rtbl.replace affected g ()) groups
        | None -> ())
      relevant;
    (* plus groups reachable from the touched clusters in the new
       state: witness query restricted to the touched identifiers,
       which also keeps the index invariant (only ever add) *)
    let restriction =
      List.filter_map
        (fun (alias, table, (info : Dirty_schema.table_info)) ->
          let ids =
            List.filter_map
              (fun (tbl, c) ->
                if String.equal tbl table then Some c else None)
              relevant
          in
          if ids = [] then None
          else
            Some
              (Sql.Ast.In_list
                 (Col { table = Some alias; name = info.id_attr }, ids)))
        t.relations
      |> function
      | [] -> assert false (* relevant <> [] implies one restriction *)
      | d :: ds -> List.fold_left (fun acc d -> Sql.Ast.Binop (Or, acc, d)) d ds
    in
    let wrel =
      run_witness ?config t ~where:(conj t.witness.where restriction)
    in
    index_scan t wrel ~each_group:(fun g ->
        if not (Rtbl.mem affected g) then Rtbl.replace affected g ());
    let n_affected = Rtbl.length affected in
    if n_affected = 0 then
      { s_touched = n_touched; s_affected = 0; s_fallback = None }
    else if n_affected > max_affected then
      full_refresh ?config t "wide-delta" ~touched:n_touched
    else begin
      let pred = group_predicate t affected in
      let q = { t.rewritten with where = conj t.rewritten.where pred } in
      let recomputed =
        Engine.Database.query_ast ?config (Clean.engine t.session) q
      in
      splice t recomputed affected;
      { s_touched = n_touched; s_affected = n_affected; s_fallback = None }
    end
  end
