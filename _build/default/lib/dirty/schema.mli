(** Relation schemas: ordered lists of named, typed attributes. *)

type attribute = {
  name : string;  (** lowercase attribute name *)
  ty : Value.ty;
}

type t

val make : (string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate attribute names. *)

val attributes : t -> attribute list
val arity : t -> int
val names : t -> string list

val mem : t -> string -> bool
val index_of : t -> string -> int
(** Position of the attribute. @raise Not_found if absent. *)

val index_of_opt : t -> string -> int option
val attribute_at : t -> int -> attribute

val project : t -> string list -> t
(** Schema restricted to the given attributes, in the given order.
    @raise Not_found if one is absent. *)

val append : t -> t -> t
(** Concatenation; duplicate names are disambiguated by keeping the
    later occurrence suffixed with [_2], [_3], ... *)

val rename : prefix:string -> t -> t
(** Prefix every attribute name with [prefix ^ "."], used to qualify
    attribute references after a join. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
