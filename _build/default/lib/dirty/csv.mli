(** Minimal CSV reader/writer used by the CLI and the examples.

    Supports RFC-4180-style quoting: fields containing the separator,
    a double quote, or a newline are quoted with ["..."] and embedded
    quotes are doubled. *)

val parse_line : ?sep:char -> string -> string list
val render_line : ?sep:char -> string list -> string

val read_channel : ?sep:char -> in_channel -> string list list
val read_file : ?sep:char -> string -> string list list

val relation_of_rows :
  ?header:bool -> string list list -> Relation.t
(** Build a relation from raw CSV rows.  When [header] (default true)
    the first row gives attribute names; otherwise names are
    [c0, c1, ...].  Column types are inferred by {!Value.parse} on the
    data (majority vote; mixed columns degrade to VARCHAR, storing the
    parsed values unchanged). *)

val load_file : ?sep:char -> ?header:bool -> string -> Relation.t

val write_file : ?sep:char -> ?header:bool -> string -> Relation.t -> unit
