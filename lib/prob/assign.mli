(** The probability-assignment procedure of Figure 5.

    Given a clustering of a relation and a distance measure, each
    tuple gets the probability of being the cluster's representative
    in the clean database:

    - Step 1: compute each cluster's representative by merging the
      member tuples' DCFs.
    - Step 2: compute the distance [d_t] of every tuple to its
      cluster's representative and the per-cluster sum [S(c)].
    - Step 3: similarity [s_t = 1 − d_t / S(c)]; the probability is
      [1.0] for singleton clusters and [s_t / (|c| − 1)] otherwise.

    Degenerate case (not covered by the paper): when [S(c) = 0] —
    all member tuples identical — probabilities are uniform
    [1/|c|]. *)

type distance =
  | Information_loss
      (** DCF merge loss [I(C;V) − I(C';V)] (the paper's measure,
          Section 4.1.3) *)
  | Edit_distance
      (** mean normalized Levenshtein distance between the tuple and
          the representative's modal tuple, attribute-wise *)
  | Custom of (Matrix.t -> int -> Infotheory.Dcf.t -> float)
      (** [f matrix row rep] *)

type result = {
  probabilities : float array;  (** per row, row order *)
  distances : float array;  (** d_t per row *)
  similarities : float array;  (** s_t per row (1.0 for singletons) *)
  representatives : (Dirty.Value.t * Infotheory.Dcf.t) list;
}

val run :
  ?distance:distance ->
  ?attrs:string list ->
  ?jobs:int ->
  Dirty.Relation.t ->
  Dirty.Cluster.t ->
  result
(** Execute the procedure.  [attrs] selects the attributes the
    summaries are built over (default: all).  The returned
    probabilities sum to 1 within each cluster.  [jobs] (default: the
    process-wide {!Engine.Parallel.default_jobs}) parallelizes the
    per-cluster distance evaluations over the domain pool; clusters
    write disjoint rows, so results are identical for any value.  A
    [Custom] distance function must be thread-safe when [jobs > 1]. *)

val assign :
  ?distance:distance ->
  ?attrs:string list ->
  ?jobs:int ->
  Dirty.Relation.t ->
  Dirty.Cluster.t ->
  float array
(** Just the probabilities of {!run}. *)

val annotate_table : ?distance:distance -> ?attrs:string list -> ?jobs:int ->
  Dirty.Dirty_db.table -> Dirty.Dirty_db.table
(** Recompute the probability column of a dirty table from its own
    clustering.  [attrs] defaults to all attributes except the
    identifier and probability columns. *)
