.PHONY: all build test check bench examples quickbench fuzz clean

# the CI fuzz configuration: 500 differential cases, fixed seed,
# counterexamples (if any) saved under fuzz-out/
FUZZ_SEED ?= 0
FUZZ_CASES ?= 500

all: build

build:
	dune build @all

test:
	dune runtest

# everything CI runs: full build, test suite, and the examples
check:
	dune build @all
	dune runtest
	$(MAKE) examples

# full evaluation harness (all tables/figures/ablations + bechamel)
bench:
	dune exec bench/main.exe

# CI-sized benchmark pass
quickbench:
	dune exec bench/main.exe -- --quick --no-bechamel

fuzz:
	dune exec bin/conquer_cli.exe -- fuzz \
	  --seed $(FUZZ_SEED) --cases $(FUZZ_CASES) --out fuzz-out
	dune exec bin/conquer_cli.exe -- fuzz --replay test/corpus

examples:
	dune exec examples/quickstart.exe
	dune exec examples/crm.exe
	dune exec examples/citations.exe
	dune exec examples/tpch_demo.exe
	dune exec examples/dedup.exe
	dune exec examples/aggregates.exe

clean:
	dune clean
