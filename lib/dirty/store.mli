(** Journaled, checksummed directory persistence for dirty databases.

    A database is saved as one CSV file per table plus a manifest,
    grouped into numbered {e generations}; a [CURRENT] pointer file
    names the committed generation and a per-generation journal
    records the size and CRC-32 of every file in it:

    {v
    dir/
      CURRENT            -- "2\n": the committed generation
      journal.g2.csv     -- file,bytes,crc32
      manifest.g2.csv    -- name,id_attr,prob_attr,file
      customer.g2.csv
      orders.g2.csv
      ...                -- generation-1 files kept as fallback
    v}

    Every file is written through {!Fault.Io} to a temp name, fsynced,
    renamed into place (atomic on POSIX) and the directory synced;
    transient I/O failures are retried per {!Fault.Retry}.  The order
    is table files, then the journal, then the manifest, then the
    [CURRENT] flip — the single commit point — so a process killed at
    {e any} syscall boundary leaves either the previous committed
    snapshot fully intact or the new one fully committed, never a mix.

    {!load} verifies every journalled checksum and falls back to the
    previous intact generation (counted by the
    [dirty.store.recoveries] telemetry counter) when verification
    fails.  The pre-journal v1 layout (a bare [manifest.csv] plus
    [<table>.csv], no checksums) is still readable and serves as the
    fallback for generation 1.

    Format v3 adds {e delta generations} ({!commit_delta}): a
    generation that persists a journaled, checksummed {!Delta.batch}
    ([delta.g<k>.csv]) instead of a full snapshot.  Loading walks the
    chain down to the snapshot at its base and replays each batch in
    order; commit is the same [CURRENT] flip, so updates share the
    full save's crash-atomicity at every syscall boundary.  Cleanup
    and {!recover} keep the committed chain and its fallback chain
    intact. *)

exception Corrupt of { dir : string; detail : string }
(** No intact snapshot could be loaded: every candidate generation
    (and the legacy layout, if present) failed verification. *)

val save : string -> Dirty_db.t -> unit
(** Write the database into the directory (created if missing) as a
    new full-snapshot generation and commit it by flipping [CURRENT];
    generations older than the fallback chain's base are then removed
    best-effort.  Saving over a delta chain compacts it: the next
    cleanup drops the superseded chain. *)

val commit_delta : string -> Delta.batch -> int
(** Append one update batch as a new delta generation and commit it,
    returning the new generation number.  The batch is validated by
    the caller (typically by {!Delta.apply} against the in-memory
    database before committing).
    @raise Invalid_argument on an empty batch, and
    @raise Sys_error when the directory has no committed v2 generation
    to build on (save a snapshot first). *)

val delta_chain_length : string -> int
(** Number of delta generations between the committed generation and
    the snapshot at the base of its chain ([0] right after a full
    save) — the writer's compaction trigger. *)

val journal_bytes : string -> int
(** Total bytes of delta record files in the committed chain, also
    published as the [dirty.store.journal_bytes] gauge by every
    save/commit/load. *)

val load : ?validate:bool -> ?lenient:bool -> string -> Dirty_db.t
(** Load the committed snapshot.  When [validate] (default [true]) the
    per-cluster probability sums are re-checked.  When [lenient]
    (default [false]), invalid tables and malformed manifest rows are
    skipped instead of aborting the whole load (use {!load_verbose} to
    see what was skipped).  Checksum or structural damage to a
    generation triggers fallback to the previous intact one in either
    mode.
    @raise Corrupt when no intact snapshot remains.
    @raise Sys_error on a missing directory / legacy manifest, and
    @raise Dirty_db.Invalid on validation failures (non-lenient). *)

val load_verbose :
  ?validate:bool -> ?lenient:bool -> string -> Dirty_db.t * string list
(** Like {!load}, also returning the warnings collected while loading:
    tables skipped in lenient mode, and generations skipped by
    checksum fallback (reported in both modes). *)

val generation : string -> int
(** The committed generation number of the directory — what [CURRENT]
    names, falling back to the newest journalled generation when the
    pointer is damaged, and [0] when no v2 commit ever happened (a
    legacy v1 directory, or an empty/missing one).  Every {!save}
    bumps it, which is what makes [(query, generation)] a sound result
    cache key: any observable change to the committed snapshot changes
    the generation. *)

val recover : string -> string list
(** Sweep the directory for debris a crashed save or delta commit can
    leave behind — orphaned [.store-*.tmp] files, generation files
    newer than [CURRENT] (written but never committed, delta records
    included), and generations older than the fallback chain's base —
    remove it, and describe each removal.  The committed chain and its
    fallback chain are never touched; an empty list means the
    directory was already clean. *)

(** Integrity report for one retained generation ([conquer recover
    --check]).  [check_in_chain] marks membership in the committed
    chain (base snapshot through [CURRENT]). *)
type check = {
  check_generation : int;
  check_kind : [ `Snapshot | `Delta ];
  check_in_chain : bool;
  check_result : (unit, string) result;
}

val check_generations : string -> check list
(** Verify the journalled size and CRC-32 of every file of {e every}
    retained generation (not just the committed one), newest first;
    delta records are additionally parsed and their parent linkage
    checked.  Purely diagnostic: nothing is modified, and a corrupt
    entry here does not imply the store is unloadable (fallback may
    still succeed). *)
