lib/sql/ast.ml: Dirty List Option String
