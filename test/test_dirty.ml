(* Tests for the data-model substrate: values, schemas, relations,
   CSV, clusterings, dirty databases and identifier propagation. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

(* ---- Value ---- *)

let test_value_compare () =
  Alcotest.(check bool) "int/float numeric order" true
    (Value.compare (v_i 2) (v_f 2.5) < 0);
  Alcotest.(check bool) "int/float equality" true
    (Value.equal (v_i 2) (v_f 2.0));
  Alcotest.(check bool) "null sorts first" true
    (Value.compare Value.Null (v_i (-100)) < 0);
  Alcotest.(check bool) "strings ordered" true
    (Value.compare (v_s "abc") (v_s "abd") < 0);
  Alcotest.(check int) "null equals null" 0 (Value.compare Value.Null Value.Null)

(* int/float comparison must be exact: above 2^53 consecutive ints map
   onto the same float, so rounding the int would collapse distinct
   keys and break transitivity of [equal] *)
let test_value_compare_exact () =
  let big = 1 lsl 53 in
  Alcotest.(check bool) "2^53 and 2^53+1 stay distinct" false
    (Value.equal (v_i big) (v_i (big + 1)));
  Alcotest.(check bool) "small int/float equality" true
    (Value.equal (v_i 1) (v_f 1.0));
  Alcotest.(check bool) "2^53 equals its float image" true
    (Value.equal (v_i big) (v_f (float_of_int big)));
  (* float_of_int (2^53 + 1) rounds down to 2^53: only one of the two
     ints may compare equal to the float *)
  Alcotest.(check bool) "2^53+1 is above the rounded float" true
    (Value.compare (v_i (big + 1)) (v_f (float_of_int big)) > 0);
  Alcotest.(check bool) "fractional floats stay strict" true
    (Value.compare (v_i 3) (v_f 3.5) < 0
    && Value.compare (v_f 3.5) (v_i 4) < 0);
  Alcotest.(check bool) "negative mirror" true
    (Value.compare (v_i (-(big + 1))) (v_f (float_of_int (-big))) < 0);
  Alcotest.(check bool) "huge float beyond int range" true
    (Value.compare (v_i max_int) (v_f 1e19) < 0
    && Value.compare (v_i min_int) (v_f (-1e19)) > 0);
  Alcotest.(check bool) "nan sorts below ints" true
    (Value.compare (v_f Float.nan) (v_i min_int) < 0
    && Value.compare (v_i min_int) (v_f Float.nan) > 0)

let test_value_hash_consistent () =
  Alcotest.(check int) "equal numerics hash alike"
    (Value.hash (v_i 7))
    (Value.hash (v_f 7.0))

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.equal (Value.parse "42") (v_i 42));
  Alcotest.(check bool) "float" true (Value.equal (Value.parse "3.5") (v_f 3.5));
  Alcotest.(check bool) "negative" true (Value.equal (Value.parse "-7") (v_i (-7)));
  Alcotest.(check bool) "string" true
    (Value.equal (Value.parse "hello world") (v_s "hello world"));
  Alcotest.(check bool) "empty is null" true (Value.is_null (Value.parse ""));
  Alcotest.(check bool) "NULL is null" true (Value.is_null (Value.parse "NULL"));
  Alcotest.(check bool) "bool" true (Value.equal (Value.parse "true") (Value.Bool true))

let test_value_dates () =
  let d = Value.date_of_string "1995-03-15" in
  (match d with
  | Value.Date days ->
    Alcotest.(check string) "round trip" "1995-03-15" (Value.string_of_date days)
  | _ -> Alcotest.fail "expected a date");
  Alcotest.(check bool) "epoch" true
    (Value.equal (Value.date_of_string "1970-01-01") (Value.Date 0));
  Alcotest.(check bool) "day after epoch" true
    (Value.equal (Value.date_of_string "1970-01-02") (Value.Date 1));
  Alcotest.(check bool) "leap year" true
    (Value.equal (Value.date_of_string "2000-02-29") (Value.Date 11016));
  Alcotest.(check bool) "parse picks up dates" true
    (Value.equal (Value.parse "1995-03-15") (Value.date_of_string "1995-03-15"));
  (match Value.date_of_string "1995-13-01" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad month accepted")

let test_value_date_ordering () =
  Alcotest.(check bool) "dates ordered" true
    (Value.compare
       (Value.date_of_string "1994-12-31")
       (Value.date_of_string "1995-01-01")
    < 0)

let test_value_sql_literals () =
  Alcotest.(check string) "string quoting" "'it''s'" (Value.to_sql (v_s "it's"));
  Alcotest.(check string) "null" "NULL" (Value.to_sql Value.Null);
  Alcotest.(check string) "date" "DATE '1995-03-15'"
    (Value.to_sql (Value.date_of_string "1995-03-15"))

(* ---- Schema ---- *)

let abc () =
  Schema.make [ ("a", Value.TInt); ("b", Value.TString); ("c", Value.TFloat) ]

let test_schema_basics () =
  let s = abc () in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] (Schema.names s);
  Alcotest.(check int) "index" 1 (Schema.index_of s "b");
  Alcotest.(check int) "case-insensitive lookup" 1 (Schema.index_of s "B");
  Alcotest.(check bool) "mem" true (Schema.mem s "c");
  Alcotest.(check bool) "not mem" false (Schema.mem s "z")

let test_schema_duplicate_rejected () =
  match Schema.make [ ("x", Value.TInt); ("x", Value.TInt) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_schema_project_append_rename () =
  let s = abc () in
  Alcotest.(check (list string)) "project" [ "c"; "a" ]
    (Schema.names (Schema.project s [ "c"; "a" ]));
  let appended = Schema.append s (Schema.make [ ("a", Value.TInt) ]) in
  Alcotest.(check (list string)) "append disambiguates"
    [ "a"; "b"; "c"; "a_2" ] (Schema.names appended);
  let renamed = Schema.rename ~prefix:"t" s in
  Alcotest.(check (list string)) "rename" [ "t.a"; "t.b"; "t.c" ]
    (Schema.names renamed)

(* ---- Relation ---- *)

let small_rel () =
  Relation.create (abc ())
    [
      [| v_i 1; v_s "x"; v_f 1.5 |];
      [| v_i 2; v_s "y"; v_f 2.5 |];
      [| v_i 2; v_s "y"; v_f 2.5 |];
      [| v_i 3; v_s "z"; v_f 0.5 |];
    ]

let test_relation_basics () =
  let r = small_rel () in
  Alcotest.(check int) "cardinality" 4 (Relation.cardinality r);
  Alcotest.(check bool) "value lookup" true
    (Value.equal (Relation.value r (Relation.get r 1) "b") (v_s "y"));
  Alcotest.(check int) "column length" 4 (Array.length (Relation.column r "a"))

let test_relation_arity_mismatch () =
  match Relation.create (abc ()) [ [| v_i 1 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short row accepted"

let test_relation_filter_project () =
  let r = small_rel () in
  let evens =
    Relation.filter (fun row -> Value.equal row.(0) (v_i 2)) r
  in
  Alcotest.(check int) "filter" 2 (Relation.cardinality evens);
  let projected = Relation.project r [ "b" ] in
  Alcotest.(check (list string)) "projected schema" [ "b" ]
    (Schema.names (Relation.schema projected))

let test_relation_distinct () =
  let d = Relation.distinct (small_rel ()) in
  Alcotest.(check int) "duplicates removed" 3 (Relation.cardinality d)

let test_relation_sort () =
  let r = small_rel () in
  let sorted = Relation.sort_by (fun a b -> Value.compare b.(2) a.(2)) r in
  Alcotest.(check bool) "descending by c" true
    (Value.equal (Relation.get sorted 0).(2) (v_f 2.5))

let test_relation_bag_equal () =
  let r = small_rel () in
  let shuffled =
    Relation.create (abc ())
      (List.rev (Relation.row_list r))
  in
  Alcotest.(check bool) "order-insensitive" true (Relation.equal_as_bags r shuffled);
  Alcotest.(check bool) "distinct differs" false
    (Relation.equal_as_bags r (Relation.distinct r))

let test_relation_append_mismatch () =
  let r = small_rel () in
  let other = Relation.create (Schema.make [ ("a", Value.TInt) ]) [] in
  match Relation.append r other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schema mismatch accepted"

(* ---- CSV ---- *)

let test_csv_parse_line () =
  Alcotest.(check (list string)) "simple" [ "a"; "b"; "c" ]
    (Csv.parse_line "a,b,c");
  Alcotest.(check (list string)) "quoted" [ "a,b"; "c" ]
    (Csv.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "say \"hi\""; "x" ]
    (Csv.parse_line "\"say \"\"hi\"\"\",x");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "x" ]
    (Csv.parse_line ",,x")

let test_csv_render_roundtrip () =
  let fields = [ "plain"; "with,comma"; "with\"quote"; "" ] in
  Alcotest.(check (list string)) "roundtrip" fields
    (Csv.parse_line (Csv.render_line fields))

let test_csv_relation_roundtrip () =
  let r = small_rel () in
  let path = Filename.temp_file "conquer" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path r;
      let r' = Csv.load_file path in
      Alcotest.(check bool) "same bag of rows" true (Relation.equal_as_bags r r'))

let test_csv_type_inference () =
  let rel =
    Csv.relation_of_rows
      [ [ "k"; "v" ]; [ "1"; "x" ]; [ "2"; "y" ]; [ "3"; "1.5" ] ]
  in
  let schema = Relation.schema rel in
  Alcotest.(check string) "int column" "INTEGER"
    (Value.ty_name (Schema.attribute_at schema 0).ty)

(* ---- Cluster ---- *)

let test_cluster_grouping () =
  let r = Fixtures.customers_relation () in
  let c = Cluster.of_relation r ~id_attr:"id" in
  Alcotest.(check int) "two clusters" 2 (Cluster.num_clusters c);
  Alcotest.(check (list int)) "c1 members" [ 0; 1 ] (Cluster.members c (v_s "c1"));
  Alcotest.(check (list int)) "c2 members" [ 2; 3 ] (Cluster.members c (v_s "c2"));
  Alcotest.(check bool) "row ownership" true
    (Value.equal (Cluster.cluster_of_row c 3) (v_s "c2"));
  Alcotest.(check int) "max size" 2 (Cluster.max_cluster_size c);
  Alcotest.(check (float 1e-9)) "mean size" 2.0 (Cluster.mean_cluster_size c)

let test_cluster_singleton () =
  let c = Cluster.of_assignment ~size:3 (fun i -> v_i i) in
  Alcotest.(check int) "three singleton clusters" 3 (Cluster.num_clusters c);
  Alcotest.(check bool) "singleton" true (Cluster.is_singleton c (v_i 0))

(* ---- Dirty_db ---- *)

let test_dirty_db_validation () =
  let bad =
    Relation.create
      (Schema.make [ ("id", Value.TString); ("prob", Value.TFloat) ])
      [ [| v_s "c1"; v_f 0.5 |]; [| v_s "c1"; v_f 0.3 |] ]
  in
  (match Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" bad with
  | exception Dirty_db.Invalid msg ->
    Alcotest.(check bool) "mentions the sum" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "invalid probabilities accepted");
  (* unvalidated construction then explicit validation *)
  let t = Dirty_db.make_table ~validate:false ~name:"t" ~id_attr:"id" ~prob_attr:"prob" bad in
  Alcotest.(check bool) "violations reported" true
    (Dirty_db.table_validate t <> [])

let test_dirty_db_out_of_range () =
  let bad =
    Relation.create
      (Schema.make [ ("id", Value.TString); ("prob", Value.TFloat) ])
      [ [| v_s "c1"; v_f 1.5 |]; [| v_s "c1"; v_f (-0.5) |] ]
  in
  match Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" bad with
  | exception Dirty_db.Invalid _ -> ()
  | _ -> Alcotest.fail "out-of-range probability accepted"

let test_dirty_db_of_clean () =
  let clean =
    Relation.create
      (Schema.make [ ("k", Value.TInt); ("v", Value.TString) ])
      [ [| v_i 1; v_s "x" |]; [| v_i 2; v_s "y" |] ]
  in
  let t = Dirty_db.of_clean ~name:"c" ~id_attr:"k" clean in
  Alcotest.(check (float 1e-12)) "prob 1" 1.0 (Dirty_db.row_probability t 0);
  Alcotest.(check int) "clusters = rows" 2 (Cluster.num_clusters t.clustering)

let test_dirty_db_with_probabilities () =
  let t =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
      (Fixtures.customers_relation ())
  in
  let t' = Dirty_db.with_probabilities t [| 0.4; 0.6; 0.5; 0.5 |] in
  Fixtures.check_float "updated" 0.4 (Dirty_db.row_probability t' 0);
  (match Dirty_db.with_probabilities t [| 0.9; 0.9; 0.5; 0.5 |] with
  | exception Dirty_db.Invalid _ -> ()
  | _ -> Alcotest.fail "invalid update accepted")

let test_dirty_db_catalog () =
  let db = Fixtures.figure2_db () in
  Alcotest.(check (list string)) "table names" [ "customer"; "orders" ]
    (Dirty_db.table_names db);
  Alcotest.(check bool) "lookup" true
    (Option.is_some (Dirty_db.find_table_opt db "orders"));
  Alcotest.(check (list string)) "validates" [] (Dirty_db.validate db);
  (match Dirty_db.add_table db (Dirty_db.find_table db "orders") with
  | exception Dirty_db.Invalid _ -> ()
  | _ -> Alcotest.fail "duplicate table accepted")

let test_propagation () =
  (* orders reference customers by their per-tuple key custid; after
     propagation cidfk carries the customer cluster identifier *)
  let orders =
    Relation.create
      (Schema.make
         [
           ("id", Value.TString);
           ("custfk", Value.TString);
           ("cidfk", Value.TString);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "o1"; v_s "m2"; Value.Null; v_f 1.0 |];
        [| v_s "o2"; v_s "m4"; Value.Null; v_f 1.0 |];
        [| v_s "o3"; v_s "zz"; Value.Null; v_f 1.0 |];
      ]
  in
  let customer =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
      (Fixtures.customers_relation ())
  in
  let order_table =
    Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob" orders
  in
  let propagated =
    Dirty_db.propagate ~src:customer ~src_key:"custid" ~dst:order_table
      ~fk_attr:"custfk" ~out_attr:"cidfk"
  in
  let col = Relation.column propagated.relation "cidfk" in
  Alcotest.(check bool) "m2 -> c1" true (Value.equal col.(0) (v_s "c1"));
  Alcotest.(check bool) "m4 -> c2" true (Value.equal col.(1) (v_s "c2"));
  Alcotest.(check bool) "unmatched -> null" true (Value.is_null col.(2))

let test_propagation_fresh_column () =
  let orders =
    Relation.create
      (Schema.make
         [ ("id", Value.TString); ("custfk", Value.TString); ("prob", Value.TFloat) ])
      [ [| v_s "o1"; v_s "m1"; v_f 1.0 |] ]
  in
  let customer =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
      (Fixtures.customers_relation ())
  in
  let order_table =
    Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob" orders
  in
  let propagated =
    Dirty_db.propagate ~src:customer ~src_key:"custid" ~dst:order_table
      ~fk_attr:"custfk" ~out_attr:"cidfk"
  in
  Alcotest.(check bool) "column appended" true
    (Schema.mem (Relation.schema propagated.relation) "cidfk")

let test_propagation_requires_unique_key () =
  let customer =
    Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob"
      (Fixtures.customers_relation ())
  in
  (* the identifier column is not unique; using it as the source key
     must be rejected *)
  match
    Dirty_db.propagate ~src:customer ~src_key:"name" ~dst:customer
      ~fk_attr:"custid" ~out_attr:"x"
  with
  | exception Dirty_db.Invalid _ -> ()
  | _ -> Alcotest.fail "non-unique key accepted"

(* ---- Store ---- *)

let with_temp_dir = Testutil.with_temp_dir

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      let db = Fixtures.figure2_db () in
      Store.save dir db;
      let db' = Store.load dir in
      Alcotest.(check (list string))
        "same tables" (Dirty_db.table_names db) (Dirty_db.table_names db');
      List.iter2
        (fun (a : Dirty_db.table) (b : Dirty_db.table) ->
          Alcotest.(check string) "id attr" a.id_attr b.id_attr;
          Alcotest.(check string) "prob attr" a.prob_attr b.prob_attr;
          Alcotest.(check bool)
            (a.name ^ " rows preserved")
            true
            (Relation.equal_as_bags a.relation b.relation))
        (Dirty_db.tables db) (Dirty_db.tables db'))

let test_store_load_is_queryable () =
  with_temp_dir (fun dir ->
      Store.save dir (Fixtures.figure2_db ());
      let db = Store.load dir in
      let s = Conquer.Clean.create db in
      let answers = Conquer.Clean.answers s Fixtures.q1 in
      Fixtures.expect_answer answers [ v_s "c1" ] 1.0;
      Fixtures.expect_answer answers [ v_s "c2" ] 0.2)

let test_store_missing_manifest () =
  with_temp_dir (fun dir ->
      match Store.load dir with
      | exception Sys_error _ -> ()
      | _ -> Alcotest.fail "missing manifest accepted")

let () =
  Alcotest.run "dirty"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "exact int/float compare" `Quick
            test_value_compare_exact;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "dates" `Quick test_value_dates;
          Alcotest.test_case "date ordering" `Quick test_value_date_ordering;
          Alcotest.test_case "sql literals" `Quick test_value_sql_literals;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicates rejected" `Quick
            test_schema_duplicate_rejected;
          Alcotest.test_case "project/append/rename" `Quick
            test_schema_project_append_rename;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
          Alcotest.test_case "filter/project" `Quick test_relation_filter_project;
          Alcotest.test_case "distinct" `Quick test_relation_distinct;
          Alcotest.test_case "sort" `Quick test_relation_sort;
          Alcotest.test_case "bag equality" `Quick test_relation_bag_equal;
          Alcotest.test_case "append mismatch" `Quick test_relation_append_mismatch;
        ] );
      ( "csv",
        [
          Alcotest.test_case "parse line" `Quick test_csv_parse_line;
          Alcotest.test_case "render roundtrip" `Quick test_csv_render_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_csv_relation_roundtrip;
          Alcotest.test_case "type inference" `Quick test_csv_type_inference;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "grouping" `Quick test_cluster_grouping;
          Alcotest.test_case "singletons" `Quick test_cluster_singleton;
        ] );
      ( "dirty_db",
        [
          Alcotest.test_case "validation" `Quick test_dirty_db_validation;
          Alcotest.test_case "out of range" `Quick test_dirty_db_out_of_range;
          Alcotest.test_case "of_clean" `Quick test_dirty_db_of_clean;
          Alcotest.test_case "with_probabilities" `Quick
            test_dirty_db_with_probabilities;
          Alcotest.test_case "catalog" `Quick test_dirty_db_catalog;
          Alcotest.test_case "propagation" `Quick test_propagation;
          Alcotest.test_case "propagation appends column" `Quick
            test_propagation_fresh_column;
          Alcotest.test_case "propagation unique key" `Quick
            test_propagation_requires_unique_key;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "loaded db queryable" `Quick
            test_store_load_is_queryable;
          Alcotest.test_case "missing manifest" `Quick test_store_missing_manifest;
        ] );
    ]
