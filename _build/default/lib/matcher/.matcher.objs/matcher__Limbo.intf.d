lib/matcher/limbo.mli: Dirty
