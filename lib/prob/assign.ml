open Dirty

type distance =
  | Information_loss
  | Edit_distance
  | Custom of (Matrix.t -> int -> Infotheory.Dcf.t -> float)

type result = {
  probabilities : float array;
  distances : float array;
  similarities : float array;
  representatives : (Value.t * Infotheory.Dcf.t) list;
}

let m_runs =
  Telemetry.Metrics.counter "prob.assign.runs"
    ~help:"probability-assignment passes (Figure 5)"

let m_clusters =
  Telemetry.Metrics.counter "prob.assign.clusters"
    ~help:"clusters whose tuple probabilities were computed"

let m_distance_evals =
  Telemetry.Metrics.counter "prob.assign.distance_evals"
    ~help:"tuple-to-representative distance evaluations"

let information_loss_fn matrix =
  let total = float_of_int (Matrix.num_rows matrix) in
  fun row rep -> Infotheory.Dcf.information_loss ~total (Matrix.row_dcf matrix row) rep

let edit_distance_fn rel attrs matrix =
  let schema = Relation.schema rel in
  let indices = List.map (Schema.index_of schema) attrs in
  fun row rep ->
    let modal = Representative.modal_tuple matrix rep in
    let tuple = Relation.get rel row in
    let dists =
      List.map2
        (fun j v ->
          Strdist.normalized_levenshtein
            (Value.to_string tuple.(j))
            (Value.to_string v))
        indices modal
    in
    List.fold_left ( +. ) 0.0 dists /. float_of_int (List.length dists)

let run ?(distance = Information_loss) ?attrs ?jobs rel clustering =
  let jobs =
    match jobs with Some j -> j | None -> Engine.Parallel.default_jobs ()
  in
  Telemetry.Metrics.inc m_runs;
  Telemetry.Span.with_ ~name:"prob.assign" @@ fun () ->
  let attrs =
    match attrs with None -> Schema.names (Relation.schema rel) | Some a -> a
  in
  let matrix =
    Telemetry.Span.with_ ~name:"prob.assign.matrix" (fun () ->
        Matrix.of_relation ~attrs rel)
  in
  let dist_fn =
    match distance with
    | Information_loss -> information_loss_fn matrix
    | Edit_distance -> edit_distance_fn rel attrs matrix
    | Custom f -> f matrix
  in
  let dist_fn row rep =
    Telemetry.Metrics.inc m_distance_evals;
    dist_fn row rep
  in
  let n = Relation.cardinality rel in
  let distances = Array.make n 0.0 in
  let similarities = Array.make n 1.0 in
  let probabilities = Array.make n 1.0 in
  let representatives =
    Telemetry.Span.with_ ~name:"prob.assign.representatives" (fun () ->
        Representative.all matrix clustering)
  in
  Telemetry.Metrics.inc ~n:(List.length representatives) m_clusters;
  Telemetry.Span.with_ ~name:"prob.assign.distances" @@ fun () ->
  (* Clusters partition the rows, so per-cluster tasks write disjoint
     slices of the result arrays — they parallelize over the domain
     pool without further coordination.  Each task is one whole
     cluster, and chunk stealing in [Parallel.run] evens out skewed
     cluster sizes.  (A [Custom] distance function must be
     thread-safe when [jobs > 1].) *)
  let reps = Array.of_list representatives in
  let process (id, rep) =
      let members = Cluster.members clustering id in
      match members with
      | [] -> ()
      | [ single ] ->
        distances.(single) <- 0.0;
        similarities.(single) <- 1.0;
        probabilities.(single) <- 1.0
      | _ ->
        let card = List.length members in
        List.iter (fun row -> distances.(row) <- dist_fn row rep) members;
        let sum = List.fold_left (fun acc row -> acc +. distances.(row)) 0.0 members in
        if sum <= 0.0 then
          (* all members identical: uniform probabilities *)
          List.iter
            (fun row ->
              similarities.(row) <- 1.0;
              probabilities.(row) <- 1.0 /. float_of_int card)
            members
        else
          List.iter
            (fun row ->
              let s = 1.0 -. (distances.(row) /. sum) in
              similarities.(row) <- s;
              probabilities.(row) <- s /. float_of_int (card - 1))
            members
  in
  Engine.Parallel.run ~jobs (Array.length reps) (fun i -> process reps.(i));
  { probabilities; distances; similarities; representatives }

let assign ?distance ?attrs ?jobs rel clustering =
  (run ?distance ?attrs ?jobs rel clustering).probabilities

let annotate_table ?distance ?attrs ?jobs (table : Dirty_db.table) =
  let attrs =
    match attrs with
    | Some a -> a
    | None ->
      List.filter
        (fun name -> name <> table.id_attr && name <> table.prob_attr)
        (Schema.names (Relation.schema table.relation))
  in
  let probs = assign ?distance ~attrs ?jobs table.relation table.clustering in
  Dirty_db.with_probabilities table probs
