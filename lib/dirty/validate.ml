type severity = Error | Warning

type diagnostic =
  | Missing_column of { table : string; column : string; role : string }
  | Non_numeric_probability of {
      table : string;
      row : int;
      cluster : Value.t;
      value : Value.t;
    }
  | Nan_probability of { table : string; row : int; cluster : Value.t }
  | Probability_out_of_range of {
      table : string;
      row : int;
      cluster : Value.t;
      value : float;
    }
  | Zero_probability of { table : string; row : int; cluster : Value.t }
  | Cluster_sum_mismatch of {
      table : string;
      cluster : Value.t;
      sum : float;
      size : int;
    }
  | Duplicate_tuple of { table : string; cluster : Value.t; rows : int list }
  | Empty_cluster of { table : string; cluster : Value.t }
  | Dangling_reference of {
      table : string;
      row : int;
      attr : string;
      value : Value.t;
      target : string;
    }

let severity = function
  | Missing_column _ | Non_numeric_probability _ | Nan_probability _
  | Probability_out_of_range _ | Cluster_sum_mismatch _ | Empty_cluster _
  | Dangling_reference _ ->
    Error
  | Zero_probability _ | Duplicate_tuple _ -> Warning

let table_of = function
  | Missing_column { table; _ }
  | Non_numeric_probability { table; _ }
  | Nan_probability { table; _ }
  | Probability_out_of_range { table; _ }
  | Zero_probability { table; _ }
  | Cluster_sum_mismatch { table; _ }
  | Duplicate_tuple { table; _ }
  | Empty_cluster { table; _ }
  | Dangling_reference { table; _ } ->
    table

let to_string d =
  let tag = match severity d with Error -> "error" | Warning -> "warning" in
  let body =
    match d with
    | Missing_column { table; column; role } ->
      Printf.sprintf "table %s: missing %s column %s" table role column
    | Non_numeric_probability { table; row; cluster; value } ->
      Printf.sprintf "table %s: row %d (cluster %s) has non-numeric probability %s"
        table row (Value.to_string cluster) (Value.to_string value)
    | Nan_probability { table; row; cluster } ->
      Printf.sprintf "table %s: row %d (cluster %s) probability is NaN" table row
        (Value.to_string cluster)
    | Probability_out_of_range { table; row; cluster; value } ->
      Printf.sprintf "table %s: row %d (cluster %s) probability %g outside [0,1]"
        table row (Value.to_string cluster) value
    | Zero_probability { table; row; cluster } ->
      Printf.sprintf "table %s: row %d (cluster %s) has probability 0" table row
        (Value.to_string cluster)
    | Cluster_sum_mismatch { table; cluster; sum; size } ->
      Printf.sprintf
        "table %s: cluster %s probabilities sum to %g (%d tuples), expected 1"
        table (Value.to_string cluster) sum size
    | Duplicate_tuple { table; cluster; rows } ->
      Printf.sprintf "table %s: cluster %s has identical tuples at rows %s" table
        (Value.to_string cluster)
        (String.concat ", " (List.map string_of_int rows))
    | Empty_cluster { table; cluster } ->
      Printf.sprintf "table %s: cluster %s has no tuples" table
        (Value.to_string cluster)
    | Dangling_reference { table; row; attr; value; target } ->
      Printf.sprintf "table %s: row %d foreign key %s = %s names no cluster of %s"
        table row attr (Value.to_string value) target
  in
  tag ^ ": " ^ body

let pp fmt d = Format.pp_print_string fmt (to_string d)

type reference = { ref_table : string; fk_attr : string; target : string }

let tolerance = Dirty_db.tolerance

(* A numeric read of the probability field that never raises. *)
let prob_value row pidx : [ `Prob of float | `Non_numeric of Value.t ] =
  match row.(pidx) with
  | Value.Int n -> `Prob (float_of_int n)
  | Value.Float f -> `Prob f
  | v -> `Non_numeric v

(* Rows of a cluster that agree on every attribute except the
   probability column (the identifier column agrees by construction).
   Grouped by content; each group of >= 2 rows is one diagnostic. *)
let duplicate_groups relation pidx members =
  let module Rtbl = Hashtbl in
  let key i =
    let row = Relation.get relation i in
    let buf = Buffer.create 64 in
    Array.iteri
      (fun j v ->
        if j <> pidx then begin
          Buffer.add_string buf (Value.to_string v);
          Buffer.add_char buf '\x00'
        end)
      row;
    Buffer.contents buf
  in
  let groups : (string, int list) Rtbl.t = Rtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun i ->
      let k = key i in
      (match Rtbl.find_opt groups k with
      | None -> order := k :: !order
      | Some _ -> ());
      Rtbl.replace groups k (i :: Option.value ~default:[] (Rtbl.find_opt groups k)))
    members;
  List.filter_map
    (fun k ->
      match Rtbl.find groups k with
      | [] | [ _ ] -> None
      | rows -> Some (List.rev rows))
    (List.rev !order)

let table_diagnostics (t : Dirty_db.table) =
  let schema = Relation.schema t.relation in
  match
    (Schema.index_of_opt schema t.id_attr, Schema.index_of_opt schema t.prob_attr)
  with
  | None, _ ->
    [ Missing_column { table = t.name; column = t.id_attr; role = "identifier" } ]
  | _, None ->
    [ Missing_column { table = t.name; column = t.prob_attr; role = "probability" } ]
  | Some _, Some pidx ->
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    Cluster.iter
      (fun cluster members ->
        if members = [] then emit (Empty_cluster { table = t.name; cluster })
        else begin
          (* per-row probability checks; the sum is only judged when
             every member has a well-defined finite probability *)
          let sum = ref 0.0 and summable = ref true in
          List.iter
            (fun row ->
              match prob_value (Relation.get t.relation row) pidx with
              | `Non_numeric value ->
                summable := false;
                emit
                  (Non_numeric_probability { table = t.name; row; cluster; value })
              | `Prob p ->
                if Float.is_nan p then begin
                  summable := false;
                  emit (Nan_probability { table = t.name; row; cluster })
                end
                else begin
                  if p < -.tolerance || p > 1.0 +. tolerance then
                    emit
                      (Probability_out_of_range
                         { table = t.name; row; cluster; value = p })
                  else if p = 0.0 then
                    emit (Zero_probability { table = t.name; row; cluster });
                  sum := !sum +. p
                end)
            members;
          if
            !summable
            && Float.abs (!sum -. 1.0)
               > tolerance *. float_of_int (List.length members + 1)
          then
            emit
              (Cluster_sum_mismatch
                 {
                   table = t.name;
                   cluster;
                   sum = !sum;
                   size = List.length members;
                 });
          List.iter
            (fun rows -> emit (Duplicate_tuple { table = t.name; cluster; rows }))
            (duplicate_groups t.relation pidx members)
        end)
      t.clustering;
    List.rev !diags

module Vset = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let reference_diagnostics db { ref_table; fk_attr; target } =
  match (Dirty_db.find_table_opt db ref_table, Dirty_db.find_table_opt db target) with
  | None, _ ->
    [ Missing_column { table = ref_table; column = fk_attr; role = "foreign-key" } ]
  | _, None ->
    [ Missing_column { table = target; column = "(table)"; role = "referenced" } ]
  | Some src, Some dst -> (
    let src_schema = Relation.schema src.relation in
    match Schema.index_of_opt src_schema fk_attr with
    | None ->
      [ Missing_column { table = ref_table; column = fk_attr; role = "foreign-key" } ]
    | Some fk_idx ->
      (* the valid identifiers are the clusters of the target table *)
      let ids = Vset.create 64 in
      Cluster.iter (fun id _ -> Vset.replace ids id ()) dst.clustering;
      let diags = ref [] in
      let row = ref (-1) in
      Relation.iter
        (fun r ->
          incr row;
          let v = r.(fk_idx) in
          if (not (Value.is_null v)) && not (Vset.mem ids v) then
            diags :=
              Dangling_reference
                { table = ref_table; row = !row; attr = fk_attr; value = v; target }
              :: !diags)
        src.relation;
      List.rev !diags)

let db_diagnostics ?(references = []) db =
  List.concat_map table_diagnostics (Dirty_db.tables db)
  @ List.concat_map (reference_diagnostics db) references

let errors = List.filter (fun d -> severity d = Error)
let is_clean diags = errors diags = []
