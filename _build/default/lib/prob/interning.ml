open Dirty

module Key = struct
  type t = int * Value.t

  let equal (a1, v1) (a2, v2) = a1 = a2 && Value.equal v1 v2
  let hash (a, v) = (a * 31) + Value.hash v
end

module Ktbl = Hashtbl.Make (Key)

type t = {
  forward : int Ktbl.t;
  mutable backward : (int * Value.t) array;
  mutable next : int;
}

let create () = { forward = Ktbl.create 64; backward = Array.make 64 (0, Value.Null); next = 0 }

let intern t ~attr value =
  let key = (attr, value) in
  match Ktbl.find_opt t.forward key with
  | Some sym -> sym
  | None ->
    let sym = t.next in
    t.next <- sym + 1;
    Ktbl.add t.forward key sym;
    if sym >= Array.length t.backward then begin
      let bigger = Array.make (2 * Array.length t.backward) (0, Value.Null) in
      Array.blit t.backward 0 bigger 0 (Array.length t.backward);
      t.backward <- bigger
    end;
    t.backward.(sym) <- key;
    sym

let find_opt t ~attr value = Ktbl.find_opt t.forward (attr, value)
let size t = t.next

let to_pair t sym =
  if sym < 0 || sym >= t.next then raise Not_found else t.backward.(sym)

let attr_of t sym = fst (to_pair t sym)
let value_of t sym = snd (to_pair t sym)
