lib/conquer/clean.mli: Dirty Dirty_schema Engine Join_graph Rewritable
