let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* two-row dynamic program *)
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let normalized_levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 0.0
  else float_of_int (levenshtein a b) /. float_of_int (max la lb)
