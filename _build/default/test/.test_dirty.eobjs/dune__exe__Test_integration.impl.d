test/test_integration.ml: Alcotest Array Dirty Engine List Relation Schema Sql Value
