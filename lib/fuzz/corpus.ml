(* Replayable seed corpus.

   A case named [n] in a corpus directory is stored flat as:

   - [n.sql]           — the query, pretty-printed SQL
   - [n.manifest.csv]  — header [table,file,id_attr,prob_attr], one
                         row per dirty table
   - [n.<table>.csv]   — the table's relation

   Everything is loadable by the CLI's [--table] machinery too: the
   manifest rows name ordinary CSV files.  Probabilities are
   sixteenths, so the CSV round-trip is exact and a replayed case is
   bit-identical to the saved one. *)

open Dirty

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let manifest_header = [ "table"; "file"; "id_attr"; "prob_attr" ]

let save ~dir ~name (case : Case.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_text (Filename.concat dir (name ^ ".sql")) (Case.sql case ^ "\n");
  let manifest =
    List.map
      (fun (t : Dirty_db.table) ->
        let file = Printf.sprintf "%s.%s.csv" name t.name in
        Csv.write_file (Filename.concat dir file) t.relation;
        [ t.name; file; t.id_attr; t.prob_attr ])
      (Dirty_db.tables case.db)
  in
  write_text
    (Filename.concat dir (name ^ ".manifest.csv"))
    (String.concat "\n"
       (List.map Csv.render_line (manifest_header :: manifest))
    ^ "\n")

(* the spec is reconstructed from column-name conventions: [v*] are
   payloads, [fk<table>] are foreign keys; anything else (beyond the
   id and probability attributes) is treated as a payload *)
let spec_of_db db : Dbgen.spec =
  List.map
    (fun (t : Dirty_db.table) ->
      let payloads, fks =
        List.fold_left
          (fun (ps, fks) name ->
            if name = t.id_attr || name = t.prob_attr then (ps, fks)
            else if String.length name > 2 && String.sub name 0 2 = "fk" then
              (ps, (name, String.sub name 2 (String.length name - 2)) :: fks)
            else (name :: ps, fks))
          ([], [])
          (Schema.names (Relation.schema t.relation))
      in
      {
        Dbgen.name = t.name;
        payloads = List.rev payloads;
        fks = List.rev fks;
      })
    (Dirty_db.tables db)

let load ~dir ~name : Case.t =
  let manifest_path = Filename.concat dir (name ^ ".manifest.csv") in
  let rows = Csv.read_file manifest_path in
  let rows =
    match rows with
    | header :: rest when header = manifest_header -> rest
    | _ ->
      failwith
        (Printf.sprintf "%s: expected header %s" manifest_path
           (String.concat "," manifest_header))
  in
  let db =
    List.fold_left
      (fun db row ->
        match row with
        | [ table; file; id_attr; prob_attr ] ->
          let relation = Csv.load_file (Filename.concat dir file) in
          Dirty_db.add_table db
            (Dirty_db.make_table ~name:table ~id_attr ~prob_attr relation)
        | _ ->
          failwith
            (Printf.sprintf "%s: malformed row (%s)" manifest_path
               (String.concat "," row)))
      Dirty_db.empty rows
  in
  let query =
    Sql.Parser.parse_query (read_text (Filename.concat dir (name ^ ".sql")))
  in
  { Case.spec = spec_of_db db; db; query }

let names dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".sql" f)
    |> List.sort compare
