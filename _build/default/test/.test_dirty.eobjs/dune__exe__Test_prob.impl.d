test/test_prob.ml: Alcotest Array Cluster Conquer Dirty Dirty_db Fixtures Infotheory List Printf Prob Relation Schema Value
