type t = { parent : int array; rank : int array; mutable classes : int }

let create n = { parent = Array.init n Fun.id; rank = Array.make n 0; classes = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.classes <- t.classes - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b
let num_classes t = t.classes

let to_cluster t =
  Dirty.Cluster.of_assignment ~size:(Array.length t.parent) (fun i ->
      Dirty.Value.Int (find t i))
