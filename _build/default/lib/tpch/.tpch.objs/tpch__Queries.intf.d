lib/tpch/queries.mli:
