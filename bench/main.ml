(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) plus the qualitative tables of
   Section 4, and runs the ablations called out in DESIGN.md.

   Usage:
     main.exe                  run every report, then the bechamel pass
     main.exe --report NAME    run one report (see --list)
     main.exe --no-bechamel    skip the bechamel statistical pass
     main.exe --quick          smaller data sizes (CI-friendly)
     main.exe --json FILE      write the machine-readable summary to FILE
     main.exe --list           list report names

   Besides the human-readable tables, every timed measurement is
   recorded (min/median/max over the runs) and dumped together with a
   telemetry metrics snapshot as one JSON file, BENCH_<n>.json in the
   working directory — <n> is the first integer >= 2 whose file does
   not exist yet, so successive runs never clobber each other. *)

module Value = Dirty.Value
module Relation = Dirty.Relation
module Schema = Dirty.Schema
module Cluster = Dirty.Cluster
module Dirty_db = Dirty.Dirty_db

(* ------------------------------------------------------------------ *)
(* timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Measurement is Telemetry.Timing — the same helper the CLI's
   [profile] subcommand uses.  Every named sample is kept (with its
   full min/median/max spread) and written to BENCH_<n>.json at the
   end of the run, tagged with the report it came from. *)

let current_report = ref "startup"
let samples : (string * string * Telemetry.Timing.stats) list ref = ref []

let record name stats = samples := (!current_report, name, stats) :: !samples

let time_once ?name f =
  let t, result = Telemetry.Timing.time_once f in
  Option.iter (fun n -> record n (Telemetry.Timing.singleton t)) name;
  (t, result)

(* median wall-clock over [runs] executions after one warmup; the
   spread behind the median lands in BENCH_<n>.json under [name] *)
let time_runs ?runs ~name f =
  let stats = Telemetry.Timing.time_runs ?runs f in
  record name stats;
  stats.median

let ms t = t *. 1000.0

let section title = Printf.printf "\n=== %s ===\n%!" title
let note fmt = Printf.printf ("    " ^^ fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let quick = ref false

let bench_sf () = if !quick then 0.1 else 0.5

(* The Figure 2 running-example database. *)
let figure2_db () =
  let v_s s = Value.String s
  and v_i i = Value.Int i
  and v_f f = Value.Float f in
  let orders =
    Relation.create
      (Schema.make
         [
           ("id", Value.TString); ("orderid", Value.TInt);
           ("custfk", Value.TString); ("cidfk", Value.TString);
           ("quantity", Value.TInt); ("prob", Value.TFloat);
         ])
      [
        [| v_s "o1"; v_i 11; v_s "m1"; v_s "c1"; v_i 3; v_f 1.0 |];
        [| v_s "o2"; v_i 12; v_s "m2"; v_s "c1"; v_i 2; v_f 0.5 |];
        [| v_s "o2"; v_i 13; v_s "m3"; v_s "c2"; v_i 5; v_f 0.5 |];
      ]
  in
  let customer =
    Relation.create
      (Schema.make
         [
           ("id", Value.TString); ("custid", Value.TString);
           ("name", Value.TString); ("balance", Value.TInt);
           ("prob", Value.TFloat);
         ])
      [
        [| v_s "c1"; v_s "m1"; v_s "John"; v_i 20_000; v_f 0.7 |];
        [| v_s "c1"; v_s "m2"; v_s "John"; v_i 30_000; v_f 0.3 |];
        [| v_s "c2"; v_s "m3"; v_s "Mary"; v_i 27_000; v_f 0.2 |];
        [| v_s "c2"; v_s "m4"; v_s "Marion"; v_i 5_000; v_f 0.8 |];
      ]
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"orders" ~id_attr:"id" ~prob_attr:"prob" orders)
  in
  Dirty_db.add_table db
    (Dirty_db.make_table ~name:"customer" ~id_attr:"id" ~prob_attr:"prob" customer)

(* The Section 4 customer relation (Figure 6). *)
let section4_customer () =
  let v_s s = Value.String s in
  Relation.create
    (Schema.make
       [
         ("name", Value.TString); ("mktsegment", Value.TString);
         ("nation", Value.TString); ("address", Value.TString);
         ("cluster", Value.TString);
       ])
    [
      [| v_s "Mary"; v_s "building"; v_s "USA"; v_s "Jones Ave"; v_s "c1" |];
      [| v_s "Mary"; v_s "banking"; v_s "USA"; v_s "Jones Ave"; v_s "c1" |];
      [| v_s "Marion"; v_s "banking"; v_s "USA"; v_s "Jones ave"; v_s "c1" |];
      [| v_s "John"; v_s "building"; v_s "America"; v_s "Arrow"; v_s "c2" |];
      [| v_s "John S."; v_s "building"; v_s "USA"; v_s "Arrow"; v_s "c2" |];
      [| v_s "John"; v_s "banking"; v_s "Canada"; v_s "Baldwin"; v_s "c3" |];
    ]

let section4_attrs = [ "name"; "mktsegment"; "nation"; "address" ]

let tpch_db ~sf ~inconsistency =
  Tpch.Datagen.generate { Tpch.Datagen.default with sf; inconsistency }

(* ------------------------------------------------------------------ *)
(* report: the running example (Figures 1-3, Examples 2-7)             *)
(* ------------------------------------------------------------------ *)

let report_example () =
  section "Running example (Figures 1-3, Examples 2-7)";
  let db = figure2_db () in
  let s = Conquer.Clean.create db in
  Printf.printf "candidate databases: %.0f (paper: 8)\n"
    (Conquer.Candidates.count db);
  let probs =
    Conquer.Candidates.fold db (fun acc _ p -> p :: acc) []
    |> List.sort (fun a b -> Float.compare b a)
  in
  Printf.printf "candidate probabilities: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%.2f") probs));
  note "paper (Example 3): 0.28 x2, 0.12 x2, 0.07 x2, 0.03 x2";
  let show name sql expect =
    let answers = Conquer.Clean.answers s sql in
    Printf.printf "%s clean answers:\n%s" name (Relation.to_string answers);
    note "paper: %s" expect
  in
  show "q1" "select id from customer c where balance > 10000"
    "(c1, 1.0), (c2, 0.2)  [Example 4]";
  show "q2"
    "select o.id, c.id from orders o, customer c \
     where o.cidfk = c.id and c.balance > 10000"
    "(o1,c1,1.0), (o2,c1,0.5), (o2,c2,0.1)  [Example 6]";
  (* Example 7: the query outside the rewritable class *)
  let q3 =
    "select c.id from orders o, customer c \
     where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000"
  in
  (match Conquer.Clean.check s q3 with
  | Ok _ -> ()
  | Error vs ->
    Printf.printf "q3 rejected by the rewritable-class check:\n";
    List.iter
      (fun v -> Printf.printf "  - %s\n" (Conquer.Rewritable.violation_to_string v))
      vs);
  let naive = Conquer.Clean.answers_unchecked s q3 in
  let oracle = Conquer.Candidates.clean_answers db (Sql.Parser.parse_query q3) in
  Printf.printf "q3 naive grouping-and-summing (incorrect):\n%s"
    (Relation.to_string naive);
  Printf.printf "q3 possible-worlds truth:\n%s" (Relation.to_string oracle);
  note "paper (Example 7): naive returns (c1, 0.45); the truth is (c1, 0.3)"

(* ------------------------------------------------------------------ *)
(* reports: Tables 1-3 (Section 4 walkthrough)                         *)
(* ------------------------------------------------------------------ *)

let report_table1 () =
  section "Table 1: the normalized customer matrix";
  let rel = section4_customer () in
  let m = Prob.Matrix.of_relation ~attrs:section4_attrs rel in
  let interning = Prob.Matrix.interning m in
  let num_syms = Prob.Interning.size interning in
  Printf.printf "%-4s" "";
  for sym = 0 to num_syms - 1 do
    Printf.printf " %10s"
      (Value.to_string (Prob.Interning.value_of interning sym))
  done;
  print_newline ();
  for row = 0 to Prob.Matrix.num_rows m - 1 do
    Printf.printf "t%-3d" (row + 1);
    let dist = Prob.Matrix.row_dist m row in
    for sym = 0 to num_syms - 1 do
      Printf.printf " %10.2f" (Infotheory.Dist.prob dist sym)
    done;
    print_newline ()
  done;
  note "paper: each tuple row is uniform 0.25 over its four values"

let report_table2 () =
  section "Table 2: the three cluster representatives";
  let rel = section4_customer () in
  let m = Prob.Matrix.of_relation ~attrs:section4_attrs rel in
  let clustering = Cluster.of_relation rel ~id_attr:"cluster" in
  let reps = Prob.Representative.all m clustering in
  Format.printf "%a" (Prob.Representative.pp_table m) reps;
  note "paper: rep1 = (Mary .167, Marion .083, banking .167, building .083,";
  note "        USA .25, Jones Ave .167, Jones ave .083); rep2 has building/Arrow .25;";
  note "        rep3 is t6 with every value .25"

let report_table3 () =
  section "Table 3: distances, similarities and probabilities";
  let rel = section4_customer () in
  let clustering = Cluster.of_relation rel ~id_attr:"cluster" in
  let r = Prob.Assign.run ~attrs:section4_attrs rel clustering in
  Printf.printf "%-4s %-6s %12s %12s %12s\n" "" "rep" "d(t,rep)" "s_t" "p(t)";
  for i = 0 to Array.length r.probabilities - 1 do
    let rep = Value.to_string (Cluster.cluster_of_row clustering i) in
    Printf.printf "t%-3d %-6s %12.4f %12.4f %12.4f\n" (i + 1)
      ("rep" ^ String.sub rep 1 (String.length rep - 1))
      r.distances.(i) r.similarities.(i) r.probabilities.(i)
  done;
  note "paper: within c1, t2 is the most probable tuple; t4 = t5 = 0.5;";
  note "        t6 = 1.0 (singleton cluster); probabilities sum to 1 per cluster"

(* ------------------------------------------------------------------ *)
(* report: Table 4 (Cora qualitative study)                            *)
(* ------------------------------------------------------------------ *)

let report_table4 () =
  section "Table 4: Cora-style citation cluster ranking";
  let g = Tpch.Cora.generate Tpch.Cora.default in
  let ranking = Tpch.Cora.ranking g in
  let describe i =
    if Some i = g.foreign_row then "mis-clustered (different publication)"
    else if List.mem i g.variant_rows then "format variant"
    else "canonical"
  in
  let show_row (i, p) =
    let row = Relation.get g.relation i in
    let fields =
      String.concat " | "
        (List.map
           (fun a -> Value.to_string (Relation.value g.relation row a))
           g.attrs)
    in
    Printf.printf "  p=%.5f [%s]\n    %s\n" p (describe i) fields
  in
  let top = List.filteri (fun i _ -> i < 2) ranking in
  let n = List.length ranking in
  let bottom = List.filteri (fun i _ -> i >= n - 2) ranking in
  Printf.printf "top-2 tuples (cluster of %d):\n" n;
  List.iter show_row top;
  Printf.printf "bottom-2 tuples:\n";
  List.iter show_row bottom;
  note "paper: the most likely tuples carry the cluster's most frequent values;";
  note "        the least likely corresponds to a different publication"

(* ------------------------------------------------------------------ *)
(* report: Figure 7 (offline probability computation)                  *)
(* ------------------------------------------------------------------ *)

let report_fig7 () =
  section
    "Figure 7: offline times for lineitem (propagation, probabilities, scan)";
  let sf = bench_sf () in
  Printf.printf "%-6s %10s %14s %18s %14s %10s\n" "if" "rows" "propagation"
    "probability calc" "linear scan" "clusters";
  List.iter
    (fun inconsistency ->
      let db = tpch_db ~sf ~inconsistency in
      let lineitem = Dirty_db.find_table db "lineitem" in
      let rows = Relation.cardinality lineitem.relation in
      let t_prop =
        time_runs
          ~name:(Printf.sprintf "if%d/propagation" inconsistency)
          (fun () -> Tpch.Datagen.propagate_all db)
      in
      let t_assign =
        time_runs
          ~name:(Printf.sprintf "if%d/assign" inconsistency)
          (fun () -> Prob.Assign.annotate_table lineitem)
      in
      let t_scan =
        time_runs
          ~name:(Printf.sprintf "if%d/scan" inconsistency)
          (fun () ->
            Relation.fold (fun acc row -> acc + Array.length row) 0
              lineitem.relation)
      in
      Printf.printf "%-6d %10d %12.1fms %16.1fms %12.1fms %10d\n" inconsistency
        rows (ms t_prop) (ms t_assign) (ms t_scan)
        (Cluster.num_clusters lineitem.clustering))
    [ 1; 2; 5; 25 ];
  note "paper shape: propagation flat across if (size-driven only);";
  note "        probability computation grows with if; both are offline-friendly";
  note "        (under 30 min at 1GB in the paper; milliseconds at this scale)"

(* ------------------------------------------------------------------ *)
(* report: Figure 8 (original vs rewritten, 13 queries)                *)
(* ------------------------------------------------------------------ *)

let report_fig8 () =
  section "Figure 8: original vs rewritten query times (sf bench unit, if = 3)";
  let db = tpch_db ~sf:(bench_sf ()) ~inconsistency:3 in
  let s = Conquer.Clean.create db in
  Printf.printf "database rows: %d\n" (Tpch.Datagen.total_rows db);
  Printf.printf "%-5s %14s %14s %8s\n" "query" "original" "rewritten" "ratio";
  let worst = ref (0, 0.0) in
  List.iter
    (fun (q : Tpch.Queries.query) ->
      let t_orig =
        time_runs
          ~name:(Printf.sprintf "q%02d-original" q.qid)
          (fun () -> Conquer.Clean.original s q.sql)
      in
      let t_rew =
        time_runs
          ~name:(Printf.sprintf "q%02d-rewritten" q.qid)
          (fun () -> Conquer.Clean.answers s q.sql)
      in
      let ratio = if t_orig > 0.0 then t_rew /. t_orig else 1.0 in
      if ratio > snd !worst then worst := (q.qid, ratio);
      Printf.printf "Q%-4d %12.2fms %12.2fms %8.2f\n" q.qid (ms t_orig)
        (ms t_rew) ratio)
    Tpch.Queries.all;
  let qid, ratio = !worst in
  Printf.printf "worst overhead: Q%d at %.2fx\n" qid ratio;
  note "paper shape: rewriting is cheap — all queries within 1.5x of the";
  note "        original except Q9 (six joins, high selectivity) at about 1.8x"

(* ------------------------------------------------------------------ *)
(* report: Figure 9 (query 3 vs cluster size)                          *)
(* ------------------------------------------------------------------ *)

let report_fig9 () =
  section "Figure 9: query 3 vs tuples per cluster (sf bench unit)";
  let q3 = (Tpch.Queries.find 3).sql in
  let q3_nob = Tpch.Queries.q3_no_order_by.sql in
  Printf.printf "%-4s %12s %12s %16s %16s\n" "if" "orig" "rewritten"
    "orig w/o ORDER" "rew w/o ORDER";
  List.iter
    (fun inconsistency ->
      let db = tpch_db ~sf:(bench_sf ()) ~inconsistency in
      let s = Conquer.Clean.create db in
      let name suffix = Printf.sprintf "if%d/%s" inconsistency suffix in
      let t_orig =
        time_runs ~name:(name "original") (fun () -> Conquer.Clean.original s q3)
      in
      let t_rew =
        time_runs ~name:(name "rewritten") (fun () -> Conquer.Clean.answers s q3)
      in
      let t_orig_nob =
        time_runs
          ~name:(name "original-no-order-by")
          (fun () -> Conquer.Clean.original s q3_nob)
      in
      let t_rew_nob =
        time_runs
          ~name:(name "rewritten-no-order-by")
          (fun () -> Conquer.Clean.answers s q3_nob)
      in
      Printf.printf "%-4d %10.2fms %10.2fms %14.2fms %14.2fms\n" inconsistency
        (ms t_orig) (ms t_rew) (ms t_orig_nob) (ms t_rew_nob))
    [ 1; 2; 3; 4; 5 ];
  note "paper shape: with ORDER BY both queries slow down as clusters grow";
  note "        (larger result sets); without it the original is flat while the";
  note "        rewritten one still pays for its extra grouping"

(* ------------------------------------------------------------------ *)
(* report: Figure 10 (scalability with database size)                  *)
(* ------------------------------------------------------------------ *)

let report_fig10 () =
  section "Figure 10: rewritten query time vs database size (if = 3)";
  let sfs = if !quick then [ 0.05; 0.1; 0.2 ] else [ 0.1; 0.5; 1.0; 2.0 ] in
  let sessions =
    List.map
      (fun sf ->
        let db = tpch_db ~sf ~inconsistency:3 in
        (sf, Tpch.Datagen.total_rows db, Conquer.Clean.create db))
      sfs
  in
  Printf.printf "%-5s" "query";
  List.iter
    (fun (sf, rows, _) -> Printf.printf " %12s" (Printf.sprintf "sf=%g(%d)" sf rows))
    sessions;
  print_newline ();
  List.iter
    (fun (q : Tpch.Queries.query) ->
      Printf.printf "Q%-4d" q.qid;
      List.iter
        (fun (sf, _, s) ->
          let t =
            time_runs
              ~name:(Printf.sprintf "q%02d/sf%g" q.qid sf)
              (fun () -> Conquer.Clean.answers s q.sql)
          in
          Printf.printf " %10.1fms" (ms t))
        sessions;
      print_newline ())
    Tpch.Queries.all;
  note "paper shape: running times grow roughly linearly with database size"

(* ------------------------------------------------------------------ *)
(* ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* rewriting vs the exponential possible-worlds oracle *)
let report_ablation_oracle () =
  section "Ablation: RewriteClean vs possible-worlds enumeration";
  let v_i i = Value.Int i and v_f f = Value.Float f in
  let make_db clusters =
    let rows =
      List.concat
        (List.init clusters (fun e ->
             [
               [| v_i e; v_i (e mod 7); v_f 0.6 |];
               [| v_i e; v_i ((e + 1) mod 7); v_f 0.4 |];
             ]))
    in
    let rel =
      Relation.create
        (Schema.make
           [ ("id", Value.TInt); ("val", Value.TInt); ("prob", Value.TFloat) ])
        rows
    in
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"t" ~id_attr:"id" ~prob_attr:"prob" rel)
  in
  let sql = "select id from t where val < 4" in
  Printf.printf "%-9s %12s %14s %14s\n" "clusters" "candidates" "rewriting"
    "oracle";
  List.iter
    (fun clusters ->
      let db = make_db clusters in
      let s = Conquer.Clean.create db in
      let candidates = Conquer.Candidates.count db in
      let t_rew =
        time_runs
          ~name:(Printf.sprintf "%d-clusters/rewriting" clusters)
          (fun () -> Conquer.Clean.answers s sql)
      in
      let t_oracle =
        if candidates <= 70_000.0 then
          Printf.sprintf "%10.2fms"
            (ms
               (time_runs ~runs:1
                  ~name:(Printf.sprintf "%d-clusters/oracle" clusters)
                  (fun () ->
                    Conquer.Candidates.clean_answers ~max_candidates:100_000 db
                      (Sql.Parser.parse_query sql))))
        else "  infeasible"
      in
      Printf.printf "%-9d %12.0f %12.2fms %14s\n" clusters candidates (ms t_rew)
        t_oracle)
    [ 2; 4; 8; 12; 16; 24 ];
  note "the oracle is exponential in the number of clusters; the rewriting is";
  note "        a single grouped query — this is why Section 3 exists"

(* exclusive (clean answers) vs independent tuples *)
let report_ablation_independent () =
  section "Ablation: exclusive duplicates vs independent tuples (Section 1)";
  let db = figure2_db () in
  let sql = "select id from customer where balance > 10000" in
  let q = Sql.Parser.parse_query sql in
  let exclusive = Conquer.Candidates.clean_answers db q in
  let independent = Conquer.Independent.answers db q in
  Printf.printf "query: %s\n" sql;
  Printf.printf "exclusive duplicate semantics (this paper):\n%s"
    (Relation.to_string exclusive);
  Printf.printf "independent-tuple semantics (Dalvi-Suciu style):\n%s"
    (Relation.to_string independent);
  note "with exclusivity, duplicate customer c1 is certain (one of its two";
  note "        representations must be clean: p = 1.0); independence gives";
  note "        1 - (1-0.7)(1-0.3) = 0.79 — the wrong semantics for duplicates"

(* information-loss vs edit-distance probability assignment *)
let report_ablation_distance () =
  section "Ablation: information-loss vs string-edit-distance assignment";
  let rel = section4_customer () in
  let clustering = Cluster.of_relation rel ~id_attr:"cluster" in
  let info = Prob.Assign.run ~attrs:section4_attrs rel clustering in
  let edit =
    Prob.Assign.run ~distance:Prob.Assign.Edit_distance ~attrs:section4_attrs
      rel clustering
  in
  Printf.printf "%-4s %18s %18s\n" "" "information loss" "edit distance";
  for i = 0 to Array.length info.probabilities - 1 do
    Printf.printf "t%-3d %18.4f %18.4f\n" (i + 1) info.probabilities.(i)
      edit.probabilities.(i)
  done;
  note "both are valid distance plug-ins for Figure 5; information loss";
  note "        rewards value-frequency agreement, edit distance surface";
  note "        similarity (the paper defaults to information loss for";
  note "        categorical data)"

(* offline survivorship vs clean answers *)
let report_ablation_survivorship () =
  section "Ablation: offline survivorship resolution vs clean answers";
  let db = tpch_db ~sf:(bench_sf ()) ~inconsistency:3 in
  let clean_session = Conquer.Clean.create db in
  let resolved_best = Conquer.Clean.create (Prob.Resolve.resolve db) in
  let resolved_merge =
    Conquer.Clean.create (Prob.Resolve.resolve ~policy:Prob.Resolve.Merge db)
  in
  Printf.printf "%-5s %14s %18s %14s %14s\n" "query" "clean answers"
    "certain (p=1)" "best-tuple" "merged";
  List.iter
    (fun qid ->
      let q = Tpch.Queries.find qid in
      let clean = Conquer.Clean.answers clean_session q.sql in
      let certain = Conquer.Clean.consistent_answers clean_session q.sql in
      let best = Conquer.Clean.original resolved_best q.sql in
      let merged = Conquer.Clean.original resolved_merge q.sql in
      Printf.printf "Q%-4d %14d %18d %14d %14d\n" qid
        (Relation.cardinality clean)
        (Relation.cardinality certain)
        (Relation.cardinality best)
        (Relation.cardinality merged))
    [ 3; 6; 10; 12; 18 ];
  note "survivorship commits to one representation per entity before";
  note "        querying: it returns roughly the certain answers and drops";
  note "        the possible-but-uncertain ones that clean answers keep,";
  note "        ranked by probability — the introduction's card-111 effect"

(* identifier indexes on/off *)
let report_ablation_index () =
  section "Ablation: identifier indexes on vs off";
  let db = tpch_db ~sf:(bench_sf ()) ~inconsistency:3 in
  let with_idx = Conquer.Clean.create db in
  let without_idx = Conquer.Clean.create ~index_identifiers:false db in
  Printf.printf "%-5s %16s %16s\n" "query" "indexed" "no indexes";
  List.iter
    (fun qid ->
      let q = Tpch.Queries.find qid in
      let t_with =
        time_runs
          ~name:(Printf.sprintf "q%02d-indexed" qid)
          (fun () -> Conquer.Clean.answers with_idx q.sql)
      in
      let t_without =
        time_runs
          ~name:(Printf.sprintf "q%02d-no-indexes" qid)
          (fun () -> Conquer.Clean.answers without_idx q.sql)
      in
      Printf.printf "Q%-4d %14.2fms %14.2fms\n" qid (ms t_with) (ms t_without))
    [ 3; 9; 10 ];
  note "the paper creates indexes on the identifiers before timing;";
  note "        index joins probe them instead of building transient hash tables"

(* ------------------------------------------------------------------ *)
(* extensions (the paper's future work, DESIGN.md §5)                  *)
(* ------------------------------------------------------------------ *)

(* expected aggregates: grouping/aggregation over dirty data *)
let report_ext_expected () =
  section "Extension: expected aggregates (the paper's named future work)";
  let db = tpch_db ~sf:(bench_sf ()) ~inconsistency:3 in
  let s = Conquer.Clean.create db in
  let show key name sql =
    let t = time_runs ~name:key (fun () -> Conquer.Expected.answers s sql) in
    let r = Conquer.Expected.answers s sql in
    Printf.printf "%s (%d groups, %.2f ms):\n" name (Relation.cardinality r)
      (ms t);
    print_string (Relation.to_string ~max_rows:6 r)
  in
  show "q01-aggregates" "Q1 with its aggregates restored"
    "select l_returnflag, l_linestatus, sum(l_quantity), \
     sum(l_extendedprice), count(*) from lineitem \
     where l_shipdate <= date '1998-09-02' \
     group by l_returnflag, l_linestatus \
     order by l_returnflag, l_linestatus";
  show "q06-revenue" "Q6 revenue"
    "select sum(l_extendedprice * l_discount) from lineitem \
     where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
     and l_discount between 0.05 and 0.07 and l_quantity < 24";
  note "E[SUM]/E[COUNT] are exact by linearity of expectation — even for";
  note "        SPJ cores outside the Dfn 7 class (see Expected's docs);";
  note "        verified against the possible-worlds oracle in the tests"

(* tuple matching quality on generated duplicates *)
let report_ext_matcher () =
  section "Extension: tuple-matcher quality on generated duplicates";
  let db =
    Tpch.Datagen.generate
      { Tpch.Datagen.default with sf = bench_sf (); inconsistency = 3; seed = 5 }
  in
  let customer = Dirty_db.find_table db "customer" in
  Printf.printf "customer: %d rows, %d true entities\n"
    (Relation.cardinality customer.relation)
    (Cluster.num_clusters customer.clustering);
  Printf.printf "%-10s %-7s %10s %8s %8s %8s %10s\n" "threshold" "window"
    "pairs" "prec" "recall" "f1" "time";
  List.iter
    (fun (threshold, window) ->
      let config =
        {
          Matcher.Sorted_neighborhood.passes =
            [
              Matcher.Sorted_neighborhood.pass [ "c_name" ];
              Matcher.Sorted_neighborhood.pass [ "c_address" ];
              Matcher.Sorted_neighborhood.pass [ "c_phone" ];
            ];
          window;
          threshold;
          attrs = [ "c_name"; "c_address"; "c_phone"; "c_acctbal" ];
        }
      in
      let t, predicted =
        time_once
          ~name:(Printf.sprintf "sorted-neighborhood-t%.2f-w%d" threshold window)
          (fun () -> Matcher.Sorted_neighborhood.run config customer.relation)
      in
      let scores = Matcher.Evaluate.pairwise ~truth:customer.clustering predicted in
      Printf.printf "%-10.2f %-7d %10d %8.3f %8.3f %8.3f %8.1fms\n" threshold
        window
        (Matcher.Sorted_neighborhood.pairs_compared config customer.relation)
        scores.precision scores.recall scores.f1 (ms t))
    [ (0.6, 8); (0.72, 8); (0.72, 16); (0.85, 8) ];
  (* LIMBO on a small block *)
  let small =
    Relation.of_array
      (Relation.schema customer.relation)
      (Array.sub (Relation.rows customer.relation) 0
         (min 60 (Relation.cardinality customer.relation)))
  in
  let truth_small = Cluster.of_relation small ~id_attr:"c_custkey" in
  let t, predicted =
    time_once ~name:"limbo-block" (fun () ->
        Matcher.Limbo.run
          {
            attrs = [ "c_name"; "c_address"; "c_phone" ];
            stop = Num_clusters (Cluster.num_clusters truth_small);
          }
          small)
  in
  let scores = Matcher.Evaluate.pairwise ~truth:truth_small predicted in
  Printf.printf
    "LIMBO (agglomerative, %d-row block): precision %.3f recall %.3f f1 %.3f \
     (%.1f ms)\n"
    (Relation.cardinality small) scores.precision scores.recall scores.f1 (ms t);
  note "sorted-neighborhood blocking keeps comparisons near-linear in n;";
  note "        precision/recall trade off along the threshold, as in the";
  note "        merge/purge literature the paper builds its generator on"

(* Monte-Carlo sampling for non-rewritable queries *)
let report_ext_sampler () =
  section "Extension: Monte-Carlo clean answers for non-rewritable queries";
  let db = figure2_db () in
  let s = Conquer.Clean.create db in
  let q3 =
    "select c.id from orders o, customer c \
     where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000"
  in
  Printf.printf "query (Example 7, outside the rewritable class): %s\n" q3;
  Printf.printf "true clean answer (oracle): (c1, 0.3)\n";
  Printf.printf "%-9s %12s %12s %10s\n" "samples" "estimate" "std error" "time";
  List.iter
    (fun samples ->
      let t, ests =
        time_once
          ~name:(Printf.sprintf "%d-samples" samples)
          (fun () -> Conquer.Sampler.estimates ~seed:17 ~samples s q3)
      in
      match ests with
      | { probability; std_error; _ } :: _ ->
        Printf.printf "%-9d %12.4f %12.4f %8.1fms\n" samples probability
          std_error (ms t)
      | [] -> Printf.printf "%-9d (no answers observed)\n" samples)
    [ 100; 1000; 10000 ];
  (* sampling scales to databases where the oracle cannot run at all *)
  let big = tpch_db ~sf:0.1 ~inconsistency:3 in
  let sb = Conquer.Clean.create big in
  Printf.printf "candidates of an sf=0.1 TPC-H instance: %.3g (oracle infeasible)\n"
    (Conquer.Candidates.count big);
  (* the genuine TPC-H Q18, IN-subquery and all — outside the
     rewritable class, fine for the sampler *)
  let q18 = Tpch.Queries.q18_original_form in
  let t, ests =
    time_once ~name:"q18-original-form" (fun () ->
        Conquer.Sampler.estimates ~seed:23 ~samples:200 sb q18.sql)
  in
  Printf.printf
    "sampled the original Q18 (IN/HAVING subquery): %d answers in %.1f ms \
     (200 samples)\n"
    (List.length ests) (ms t);
  note "the sampler is the polynomial fallback the co-NP-hardness result";
  note "        (Section 3) says a rewriting cannot provide; estimates carry";
  note "        standard errors and converge at the usual 1/sqrt(n) rate"

(* exact count distributions *)
let report_ext_distribution () =
  section "Extension: exact COUNT distributions (Poisson-binomial over clusters)";
  let db = tpch_db ~sf:(bench_sf ()) ~inconsistency:3 in
  let s = Conquer.Clean.create db in
  (* duplicates jitter the quantity by a couple of units, so clusters
     near the predicate boundary qualify only probabilistically *)
  let sql = "select l_id from lineitem where l_quantity < 25" in
  Printf.printf "query: %s\n" sql;
  let t, pmf =
    time_once ~name:"count-pmf" (fun () ->
        Conquer.Distribution.count_distribution s sql)
  in
  Printf.printf
    "entity-count distribution over %d possible counts (computed in %.2f ms):\n"
    (Array.length pmf) (ms t);
  Printf.printf "  E[count] = %.3f, Var[count] = %.3f\n"
    (Conquer.Distribution.mean pmf)
    (Conquer.Distribution.variance pmf);
  let mode = ref 0 in
  Array.iteri (fun i p -> if p > pmf.(!mode) then mode := i) pmf;
  Printf.printf "  mode: P(count = %d) = %.4f\n" !mode pmf.(!mode);
  List.iter
    (fun k ->
      if k < Array.length pmf then
        Printf.printf "  P(count >= %d) = %.4f\n" k
          (Conquer.Distribution.at_least pmf k))
    [ 1; !mode; !mode + 2 ];
  note "beyond the paper: not just the expectation of an aggregate but its";
  note "        full distribution, exact in O(k^2) by dynamic programming";
  note "        (clusters are independent Bernoulli events under Dfn 4)"

(* ------------------------------------------------------------------ *)
(* report: parallel execution A/B (DESIGN.md §5e)                      *)
(* ------------------------------------------------------------------ *)

(* Serial vs domain-parallel execution of a hash-join-heavy suite.
   The sf-scaled TPC-H relations above are too small for the fan-out
   to amortize, so this report runs on a synthetic database sized so
   the partition-parallel operators actually engage.  Every query is
   answered at jobs=1 and jobs=4 over the same engine database; the
   serial-equivalence guarantee (bit-identical answers) is spot-checked
   here and tested exhaustively in test/test_parallel.ml.

   Speedup samples are dimensionless ratios; they are recorded through
   the same stats machinery, so in BENCH_<n>.json their value lands in
   [median_ms] verbatim (divided back out of the ms conversion). *)

let report_parallel () =
  section "Parallel execution: jobs=1 vs jobs=4 (hash-join-heavy suite)";
  let scale = if !quick then 1 else 3 in
  let nl = 120_000 * scale and nr = 60_000 * scale in
  let nkeys = 12_000 * scale in
  let rng = Random.State.make [| 0x5eed |] in
  let left =
    Relation.create
      (Schema.make
         [ ("k", Value.TInt); ("v", Value.TInt); ("a", Value.TString) ])
      (List.init nl (fun i ->
           [|
             Value.Int (Random.State.int rng nkeys);
             Value.Int (Random.State.int rng 1000);
             Value.String (Printf.sprintf "l%d" i);
           |]))
  in
  let right =
    Relation.create
      (Schema.make
         [ ("k", Value.TInt); ("g", Value.TInt); ("b", Value.TString) ])
      (List.init nr (fun j ->
           [|
             Value.Int (Random.State.int rng nkeys);
             Value.Int (Random.State.int rng 48);
             Value.String (Printf.sprintf "r%d" j);
           |]))
  in
  let engine = Engine.Database.create () in
  Engine.Database.add_relation engine ~name:"l" left;
  Engine.Database.add_relation engine ~name:"r" right;
  let config jobs = { Engine.Planner.default_config with jobs } in
  let config_row = { Engine.Planner.default_config with jobs = 1; chunked = false } in
  Printf.printf "synthetic database: l=%d rows, r=%d rows, %d distinct keys\n"
    nl nr nkeys;
  Printf.printf "recommended domain count on this machine: %d\n"
    (Domain.recommended_domain_count ());
  (* spawn the jobs=4 worker domains before any timing: the pool is
     created lazily, so without this the first jobs=4 sample would be
     charged the domain-spawn cost and the report would manufacture a
     "parallel regression" out of a cold pool.  Also pin the process
     default so an inherited CONQUER_JOBS cannot skew either phase —
     the configs above pin jobs per query anyway; this covers any code
     path that falls back to the default. *)
  Engine.Parallel.warm 4;
  Engine.Parallel.set_default_jobs 1;
  let suite =
    [
      ("join", "select l.a, r.b from l, r where l.k = r.k");
      ( "join-agg",
        "select r.g, count(*), sum(l.v) from l, r where l.k = r.k group by r.g"
      );
      ("filter-agg", "select k, count(*), sum(v), avg(v) from l where v > 100 group by k");
      ("filter-project", "select a from l where v < 500");
    ]
  in
  Printf.printf "%-16s %12s %12s %12s %9s %9s\n" "query" "rowexec" "jobs=1"
    "jobs=4" "speedup" "colgain";
  let totals = ref (0.0, 0.0, 0.0) in
  List.iter
    (fun (name, sql) ->
      let card cfg =
        Relation.cardinality (Engine.Database.query ~config:cfg engine sql)
      in
      if card (config 1) <> card (config 4) then
        failwith (Printf.sprintf "parallel answer mismatch on %s" name);
      if card config_row <> card (config 1) then
        failwith (Printf.sprintf "row/chunked answer mismatch on %s" name);
      (* each phase runs with the process default pinned to its own
         jobs value, so nothing inherited from the environment leaks
         into the measurement *)
      Engine.Parallel.set_default_jobs 1;
      let trow =
        time_runs ~name:(name ^ "/rowexec") (fun () ->
            Engine.Database.query ~config:config_row engine sql)
      in
      let t1 =
        time_runs ~name:(name ^ "/jobs1") (fun () ->
            Engine.Database.query ~config:(config 1) engine sql)
      in
      Engine.Parallel.set_default_jobs 4;
      let t4 =
        time_runs ~name:(name ^ "/jobs4") (fun () ->
            Engine.Database.query ~config:(config 4) engine sql)
      in
      Engine.Parallel.set_default_jobs 1;
      let speedup = if t4 > 0.0 then t1 /. t4 else 1.0 in
      let colgain = if t1 > 0.0 then trow /. t1 else 1.0 in
      record (name ^ "/speedup") (Telemetry.Timing.singleton (speedup /. 1000.0));
      record (name ^ "/colgain") (Telemetry.Timing.singleton (colgain /. 1000.0));
      let sr, s1, s4 = !totals in
      totals := (sr +. trow, s1 +. t1, s4 +. t4);
      Printf.printf "%-16s %10.2fms %10.2fms %10.2fms %8.2fx %8.2fx\n" name
        (ms trow) (ms t1) (ms t4) speedup colgain)
    suite;
  let sr, s1, s4 = !totals in
  let speedup = if s4 > 0.0 then s1 /. s4 else 1.0 in
  let colgain = if s1 > 0.0 then sr /. s1 else 1.0 in
  record "suite/speedup" (Telemetry.Timing.singleton (speedup /. 1000.0));
  record "suite/colgain" (Telemetry.Timing.singleton (colgain /. 1000.0));
  Printf.printf
    "suite total: %.2fms row-serial, %.2fms chunked-serial, %.2fms parallel\n"
    (ms sr) (ms s1) (ms s4);
  Printf.printf
    "  columnar gain (rowexec/jobs1): %.2fx   parallel speedup (jobs1/jobs4): \
     %.2fx\n"
    colgain speedup;
  note "partition-parallel chunked hash join / filter / aggregate on a";
  note "        shared, pre-warmed domain pool; answers are bit-identical to";
  note "        serial execution (group order, row order and float";
  note "        accumulation included); rowexec is the chunked=false baseline"

(* ------------------------------------------------------------------ *)
(* report: serve — the daemon under concurrent load                    *)
(* ------------------------------------------------------------------ *)

(* Boots an in-process [conquer serve] daemon over a synthetic dirty
   store, then measures it from the outside through real sockets:

   - a steady phase (clients <= capacity) yields p50/p99 latency and
     throughput under normal load;
   - a burst phase (clients > workers + queue) exercises admission
     control and yields the shed rate.

   Latencies are wall-clock seconds and recorded verbatim; throughput
   (req/s) and shed rate (fraction) are dimensionless, so like the
   parallel report's speedups they are recorded divided by 1000 to
   survive the ms conversion in BENCH_<n>.json. *)

let report_serve () =
  section "Serve daemon: latency, throughput and shedding over sockets";
  let n_clusters = if !quick then 200 else 600 in
  let members = 3 in
  let rows =
    List.concat
      (List.init n_clusters (fun c ->
           let p = 1.0 /. Float.of_int members in
           List.init members (fun m ->
               [|
                 Value.String (Printf.sprintf "c%d" c);
                 Value.Int ((c * members) + m);
                 Value.Float p;
               |])))
  in
  let rel =
    Relation.create
      (Schema.make
         [ ("id", Value.TString); ("val", Value.TInt); ("prob", Value.TFloat) ])
      rows
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"items" ~id_attr:"id" ~prob_attr:"prob" rel)
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "conquer-bench-serve-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Dirty.Store.save dir db;
  let config =
    {
      Server.Serve.default_config with
      port = 0;
      concurrency = 4;
      queue_capacity = 16;
      cache_capacity = 256;
    }
  in
  let t = Server.Serve.create ~config ~dir () in
  let port = Server.Serve.port t in
  let runner = Domain.spawn (fun () -> Server.Serve.run t) in
  let queries =
    [|
      "select id from items";
      "select id, val from items";
      "select id from items where val >= 0";
    |]
  in
  let fire sql =
    try
      let r =
        Server.Http.request ~host:"127.0.0.1" ~port ~timeout:30.0 ~body:sql
          "/query"
      in
      Some r.Server.Http.status
    with _ -> None
  in
  (* warm the prepared-query and result caches *)
  Array.iter (fun q -> ignore (fire q)) queries;
  let shed_before =
    Option.value ~default:0 (Telemetry.Metrics.counter_value "serve.shed")
  in
  (* steady phase: fewer clients than worker+queue capacity *)
  let clients = 6 in
  let per_client = if !quick then 25 else 80 in
  let started = Unix.gettimeofday () in
  let client_results =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            List.init per_client (fun i ->
                let sql = queries.((c + i) mod Array.length queries) in
                let t0 = Unix.gettimeofday () in
                let status = fire sql in
                (status, Unix.gettimeofday () -. t0))))
    |> List.concat_map Domain.join
  in
  let steady_wall = Unix.gettimeofday () -. started in
  let ok =
    List.filter (fun (s, _) -> s = Some 200) client_results
    |> List.map snd |> Array.of_list
  in
  Array.sort compare ok;
  let n_ok = Array.length ok in
  if n_ok = 0 then failwith "serve bench: no successful responses";
  let quantile q = ok.(min (n_ok - 1) (int_of_float (q *. float_of_int n_ok))) in
  let p50 = quantile 0.50 and p99 = quantile 0.99 in
  let throughput = float_of_int n_ok /. steady_wall in
  record "serve/p50" (Telemetry.Timing.singleton p50);
  record "serve/p99" (Telemetry.Timing.singleton p99);
  record "serve/throughput" (Telemetry.Timing.singleton (throughput /. 1000.0));
  Printf.printf
    "steady phase: %d clients x %d requests — %d ok / %d total\n" clients
    per_client n_ok (List.length client_results);
  Printf.printf "  p50 %.2fms   p99 %.2fms   %.0f req/s\n" (ms p50) (ms p99)
    throughput;
  (* burst phase: more concurrent clients than workers + queue, all
     running an uncacheable heavy query under a short deadline, so
     workers stay busy and admission control must shed the overflow
     with 503.  Deadline expiry inside a worker still answers 200
     with partial rows — only true overload sheds. *)
  let burst_clients = 48 in
  let burst_each = 4 in
  let heavy = "select a.val from items a, items b where a.val + b.val >= 0" in
  let fire_heavy () =
    try
      let r =
        Server.Http.request ~host:"127.0.0.1" ~port ~timeout:30.0 ~body:heavy
          "/query?mode=original&deadline_ms=250"
      in
      Some r.Server.Http.status
    with _ -> None
  in
  let burst =
    List.init burst_clients (fun _ ->
        Domain.spawn (fun () -> List.init burst_each (fun _ -> fire_heavy ())))
    |> List.concat_map Domain.join
  in
  let burst_total = List.length burst in
  let burst_shed = List.length (List.filter (fun s -> s = Some 503) burst) in
  let shed_rate = float_of_int burst_shed /. float_of_int burst_total in
  record "serve/shed_rate" (Telemetry.Timing.singleton (shed_rate /. 1000.0));
  Printf.printf "burst phase: %d clients — shed %d/%d (%.0f%%)\n" burst_clients
    burst_shed burst_total (100.0 *. shed_rate);
  let counter name =
    Option.value ~default:0 (Telemetry.Metrics.counter_value name)
  in
  Printf.printf
    "  counters: requests=%d shed=%d (+%d this run) cache_hits=%d\n"
    (counter "serve.requests") (counter "serve.shed")
    (counter "serve.shed" - shed_before)
    (counter "serve.cache_hits");
  Server.Serve.shutdown t;
  let drain = Domain.join runner in
  Printf.printf "  drain: %s (%d cancelled in flight)\n"
    (if drain.Server.Serve.drained then "clean" else "forced")
    drain.Server.Serve.cancelled_inflight;
  (* trace overhead A/B: the same steady workload against a second
     daemon with every request traced (sample rate 1.0, slow-query
     threshold armed, query log on).  The recorded sample is the
     traced/untraced p50 ratio — dimensionless, so divided by 1000
     like the other ratios; ~0.001 in BENCH json means parity. *)
  let traced_config =
    {
      config with
      trace_sample = 1.0;
      slow_query_ms = Some 500.0;
      trace_capacity = 64;
    }
  in
  let t2 = Server.Serve.create ~config:traced_config ~dir () in
  let port2 = Server.Serve.port t2 in
  let runner2 = Domain.spawn (fun () -> Server.Serve.run t2) in
  let fire2 sql =
    try
      let r =
        Server.Http.request ~host:"127.0.0.1" ~port:port2 ~timeout:30.0
          ~body:sql "/query"
      in
      Some r.Server.Http.status
    with _ -> None
  in
  Array.iter (fun q -> ignore (fire2 q)) queries;
  let traced_results =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            List.init per_client (fun i ->
                let sql = queries.((c + i) mod Array.length queries) in
                let t0 = Unix.gettimeofday () in
                let status = fire2 sql in
                (status, Unix.gettimeofday () -. t0))))
    |> List.concat_map Domain.join
  in
  let traced_ok =
    List.filter (fun (s, _) -> s = Some 200) traced_results
    |> List.map snd |> Array.of_list
  in
  Array.sort compare traced_ok;
  let n_traced = Array.length traced_ok in
  if n_traced = 0 then failwith "serve bench: no traced responses";
  let traced_p50 =
    traced_ok.(min (n_traced - 1) (int_of_float (0.5 *. float_of_int n_traced)))
  in
  let overhead = traced_p50 /. p50 in
  record "serve/trace_overhead" (Telemetry.Timing.singleton (overhead /. 1000.0));
  Printf.printf
    "traced phase (sample 1.0): p50 %.2fms vs %.2fms untraced — x%.3f\n"
    (ms traced_p50) (ms p50) overhead;
  (* smoke the debug surface while the traced daemon is still up *)
  let debug target =
    try
      (Server.Http.request ~host:"127.0.0.1" ~port:port2 target).Server.Http
        .status
    with _ -> 0
  in
  Printf.printf
    "  debug surface: /debug/requests=%d /debug/traces=%d /debug/querylog=%d \
     /debug/gc=%d /debug/exemplars=%d\n"
    (debug "/debug/requests") (debug "/debug/traces")
    (debug "/debug/querylog?n=5") (debug "/debug/gc")
    (debug "/debug/exemplars");
  Server.Serve.shutdown t2;
  ignore (Domain.join runner2);
  rm_rf dir;
  note "p50/p99 measured through real sockets, cache warm; shed rate";
  note "        from a burst of %d clients against %d workers + queue %d"
    burst_clients config.concurrency config.queue_capacity;
  note "trace_overhead = traced(sample 1.0) p50 / untraced p50, same load"

(* ------------------------------------------------------------------ *)
(* report: update — delta commits, incremental refresh, recovery       *)
(* ------------------------------------------------------------------ *)

(* The mutable-store write path end to end: how fast a delta batch
   commits versus rewriting the whole snapshot, how much an
   incremental view refresh saves over from-scratch re-execution when
   an update touches one cluster out of many, and how long recovery
   takes after a crash torn mid-commit.

   Throughputs (commits/s) and the refresh speedup are dimensionless,
   so — like the parallel report's ratios — they are recorded divided
   by 1000 to survive the ms conversion in BENCH_<n>.json. *)

let report_update () =
  section "Update path: delta commits, incremental refresh, crash recovery";
  let n_clusters = if !quick then 300 else 1000 in
  let members = 3 in
  let rows =
    List.concat
      (List.init n_clusters (fun c ->
           let p = 1.0 /. Float.of_int members in
           List.init members (fun m ->
               [|
                 Value.String (Printf.sprintf "c%d" c);
                 Value.Int ((c * members) + m);
                 Value.Float p;
               |])))
  in
  let rel =
    Relation.create
      (Schema.make
         [ ("id", Value.TString); ("val", Value.TInt); ("prob", Value.TFloat) ])
      rows
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~name:"items" ~id_attr:"id" ~prob_attr:"prob" rel)
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "conquer-bench-update-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Dirty.Store.save dir db;
  Printf.printf "store: %d clusters x %d members, generation %d\n" n_clusters
    members
    (Dirty.Store.generation dir);
  let batch k =
    [
      Dirty.Delta.Reassign
        {
          table = "items";
          cluster = Value.String (Printf.sprintf "c%d" (k mod n_clusters));
          weights = [| 1.0; 2.0; 1.0 |];
        };
    ]
  in
  (* 1. commit throughput: journalled delta append vs full snapshot *)
  let n_commits = if !quick then 20 else 60 in
  let t_delta, () =
    time_once ~name:"commit/delta-run" (fun () ->
        for k = 1 to n_commits do
          ignore (Dirty.Store.commit_delta dir (batch k))
        done)
  in
  let delta_rate = float_of_int n_commits /. t_delta in
  record "commit/delta-throughput"
    (Telemetry.Timing.singleton (delta_rate /. 1000.0));
  Printf.printf
    "delta commits: %d in %.1fms (%.2fms each, %.0f commits/s), chain %d, \
     journal %d bytes\n"
    n_commits (ms t_delta)
    (ms t_delta /. float_of_int n_commits)
    delta_rate
    (Dirty.Store.delta_chain_length dir)
    (Dirty.Store.journal_bytes dir);
  let current = Dirty.Store.load dir in
  let t_snapshot =
    time_runs ~name:"commit/snapshot" (fun () -> Dirty.Store.save dir current)
  in
  Printf.printf
    "compacting snapshot: %.2fms (one full rewrite = %.1f delta commits)\n"
    (ms t_snapshot)
    (t_snapshot /. (t_delta /. float_of_int n_commits));
  (* 2. incremental refresh vs from-scratch re-execution *)
  let sql = "select id from items" in
  let session = Conquer.Clean.create db in
  let view = Conquer.Incremental.materialize session sql in
  let outcome = Dirty.Delta.apply db (batch 17) in
  let session' = Conquer.Clean.create outcome.Dirty.Delta.db in
  let stats =
    Conquer.Incremental.refresh view session' ~touched:outcome.Dirty.Delta.touched
  in
  let t_inc =
    time_runs ~name:"refresh/incremental" (fun () ->
        ignore
          (Conquer.Incremental.refresh view session'
             ~touched:outcome.Dirty.Delta.touched))
  in
  let t_scratch =
    time_runs ~name:"refresh/from-scratch" (fun () ->
        ignore (Conquer.Clean.answers session' sql))
  in
  let speedup = if t_inc > 0.0 then t_scratch /. t_inc else 1.0 in
  record "refresh/speedup" (Telemetry.Timing.singleton (speedup /. 1000.0));
  Printf.printf
    "view refresh after a 1-cluster batch (%d groups, %d affected%s):\n"
    (Relation.cardinality (Conquer.Incremental.answers view))
    stats.Conquer.Incremental.s_affected
    (match stats.Conquer.Incremental.s_fallback with
    | None -> ""
    | Some r -> ", FELL BACK: " ^ r);
  Printf.printf "  incremental %.2fms   from-scratch %.2fms   speedup %.1fx\n"
    (ms t_inc) (ms t_scratch) speedup;
  (* 3. recovery time after a crash torn mid-commit *)
  Fault.Io.reset ~record:true ();
  ignore (Dirty.Store.commit_delta dir (batch 23));
  let n_ops = Fault.Io.ops () in
  Fault.Io.reset ();
  Fault.Io.arm [ (n_ops / 2, Fault.Io.Crash) ];
  (match Dirty.Store.commit_delta dir (batch 29) with
  | (_ : int) -> ()
  | exception _ -> ());
  Fault.Io.reset ();
  let t_recover, swept =
    time_once ~name:"recover/after-crash" (fun () ->
        let swept = Dirty.Store.recover dir in
        ignore (Dirty.Store.load dir);
        swept)
  in
  Printf.printf
    "recovery after a crash at op %d/%d of a commit: %.2fms (%d debris file(s) \
     swept)\n"
    (n_ops / 2) n_ops (ms t_recover) (List.length swept);
  rm_rf dir;
  note "delta commits journal one batch (CRC-checked, fsync'd) instead of";
  note "        rewriting the snapshot; refresh recomputes only the answer";
  note "        groups reachable from the touched clusters; recovery replays";
  note "        the committed chain and sweeps the torn tail"

(* ------------------------------------------------------------------ *)
(* bechamel statistical pass                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let sf = if !quick then 0.05 else 0.1 in
  let db = tpch_db ~sf ~inconsistency:3 in
  let s = Conquer.Clean.create db in
  let lineitem = Dirty_db.find_table db "lineitem" in
  let section4 = section4_customer () in
  let section4_clusters = Cluster.of_relation section4 ~id_attr:"cluster" in
  let cora = Tpch.Cora.generate Tpch.Cora.default in
  let example_db = figure2_db () in
  let example_session = Conquer.Clean.create example_db in
  let per_query =
    List.concat_map
      (fun (q : Tpch.Queries.query) ->
        [
          Test.make
            ~name:(Printf.sprintf "fig8/q%02d-original" q.qid)
            (Staged.stage (fun () -> Conquer.Clean.original s q.sql));
          Test.make
            ~name:(Printf.sprintf "fig8/q%02d-rewritten" q.qid)
            (Staged.stage (fun () -> Conquer.Clean.answers s q.sql));
        ])
      Tpch.Queries.all
  in
  [
    Test.make ~name:"example/clean-answers"
      (Staged.stage (fun () ->
           Conquer.Clean.answers example_session
             "select o.id, c.id from orders o, customer c \
              where o.cidfk = c.id and c.balance > 10000"));
    Test.make ~name:"table1/matrix"
      (Staged.stage (fun () ->
           Prob.Matrix.of_relation ~attrs:section4_attrs section4));
    Test.make ~name:"table2/representatives"
      (Staged.stage (fun () ->
           let m = Prob.Matrix.of_relation ~attrs:section4_attrs section4 in
           Prob.Representative.all m section4_clusters));
    Test.make ~name:"table3/assign"
      (Staged.stage (fun () ->
           Prob.Assign.run ~attrs:section4_attrs section4 section4_clusters));
    Test.make ~name:"table4/cora-ranking"
      (Staged.stage (fun () -> Tpch.Cora.ranking cora));
    Test.make ~name:"fig7/propagation"
      (Staged.stage (fun () -> Tpch.Datagen.propagate_all db));
    Test.make ~name:"fig7/assign-lineitem"
      (Staged.stage (fun () -> Prob.Assign.annotate_table lineitem));
    Test.make ~name:"fig9/q3-rewritten-if3"
      (Staged.stage (fun () ->
           Conquer.Clean.answers s (Tpch.Queries.find 3).sql));
    Test.make ~name:"fig10/q3-rewritten-base"
      (Staged.stage (fun () ->
           Conquer.Clean.answers s Tpch.Queries.q3_no_order_by.sql));
  ]
  @ per_query

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel statistical pass (OLS estimate per run)";
  let tests = bechamel_tests () in
  let grouped = Test.make_grouped ~name:"conquer" tests in
  let quota = if !quick then 0.1 else 0.25 in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ estimate ] -> (name, estimate) :: acc
        | _ -> acc)
      results []
  in
  List.iter
    (fun (name, estimate) ->
      record name (Telemetry.Timing.singleton (estimate /. 1e9));
      Printf.printf "%-44s %14.0f ns/run (%10.3f ms)\n" name estimate
        (estimate /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* report: cluster-sharded scaling curve (ROADMAP item 5)              *)
(* ------------------------------------------------------------------ *)

(* The shard session hash-partitions the store by cluster identifier
   and scatters the rewritten query across the domain pool, so the
   curve below is the sharding analogue of [report_parallel]'s
   jobs=1-vs-4 table: unsharded baseline, then 1/2/4/8 shards through
   the scatter/gather machinery (1 shard measures its pure overhead).
   Answers are checked for agreement with the unsharded path before
   anything is timed, with telemetry on, so a silent fallback to the
   unsharded path would show up as [engine.shard.fallbacks] and fail
   the report rather than fake a flat curve. *)
let report_shard () =
  section "Cluster-sharded execution: shard-count scaling curve (TPC-H)";
  let sf = bench_sf () in
  let db = tpch_db ~sf ~inconsistency:3 in
  Printf.printf "TPC-H sf=%g (%d rows), inconsistency=3\n" sf
    (Tpch.Datagen.total_rows db);
  (* shard scatter claims one domain per shard from the shared pool;
     spawn them before timing so no sample pays the domain-spawn cost *)
  Engine.Parallel.warm 8;
  Engine.Parallel.set_default_jobs 1;
  let shard_counts = [ 1; 2; 4; 8 ] in
  let baseline = Conquer.Clean.create db in
  let sessions =
    List.map (fun n -> (n, Conquer.Clean.create ~shards:n db)) shard_counts
  in
  (* Q1 scan-heavy, Q4 two-way join, Q10 four-way join.  Every TPC-H
     query except Q3 stays on the shard path (Q3 orders by an aliased
     aggregate expression, the documented conservative fallback). *)
  let suite =
    List.filter
      (fun (q : Tpch.Queries.query) -> List.mem q.qid [ 1; 4; 10 ])
      Tpch.Queries.all
  in
  let counter name =
    Option.value ~default:0 (Telemetry.Metrics.counter_value name)
  in
  (* correctness + engagement gate (instrumented, untimed) *)
  Telemetry.Control.with_enabled (fun () ->
      List.iter
        (fun (q : Tpch.Queries.query) ->
          let want =
            Relation.cardinality (Conquer.Clean.answers baseline q.sql)
          in
          List.iter
            (fun (n, s) ->
              let before = counter "engine.shard.fallbacks" in
              let got = Relation.cardinality (Conquer.Clean.answers s q.sql) in
              if got <> want then
                failwith
                  (Printf.sprintf "Q%d: %d rows at %d shards, %d unsharded"
                     q.qid got n want);
              if counter "engine.shard.fallbacks" > before then
                failwith
                  (Printf.sprintf "Q%d fell back to unsharded at %d shards"
                     q.qid n))
            sessions)
        suite);
  Printf.printf "%-6s %11s" "query" "unsharded";
  List.iter
    (fun n -> Printf.printf " %11s" (Printf.sprintf "%d-shard" n))
    shard_counts;
  Printf.printf " %9s\n" "speedup";
  List.iter
    (fun (q : Tpch.Queries.query) ->
      let qname = Printf.sprintf "q%02d" q.qid in
      let t0 =
        time_runs ~name:(qname ^ "/unsharded") (fun () ->
            Conquer.Clean.answers baseline q.sql)
      in
      Printf.printf "Q%-5d %9.2fms" q.qid (ms t0);
      let t1 = ref t0 and tn = ref t0 in
      List.iter
        (fun (n, s) ->
          let t =
            time_runs
              ~name:(Printf.sprintf "%s/shards%d" qname n)
              (fun () -> Conquer.Clean.answers s q.sql)
          in
          if n = 1 then t1 := t;
          tn := t;
          Printf.printf " %9.2fms" (ms t))
        sessions;
      let speedup = if !tn > 0.0 then !t1 /. !tn else 1.0 in
      record (qname ^ "/speedup")
        (Telemetry.Timing.singleton (speedup /. 1000.0));
      Printf.printf " %8.2fx\n" speedup)
    suite;
  (* the same scatter with the Grace spill forced on: the per-shard
     hash joins stream through .spill-*.tmp partition files instead of
     holding both sides in memory, which is what lets the report run
     at scale factors that outgrow the heap *)
  let spill_config =
    {
      Engine.Planner.default_config with
      (* index joins never build a hash table, so they cannot spill;
         forcing hash joins routes every join through the Grace path *)
      use_indexes = false;
      spill_rows = Some (if !quick then 50 else 200);
      spill_dir = Some (Filename.get_temp_dir_name ());
    }
  in
  let q10 = List.find (fun (q : Tpch.Queries.query) -> q.qid = 10) suite in
  let spills = ref 0 in
  Telemetry.Control.with_enabled (fun () ->
      let before = counter "engine.exec.join_spills" in
      List.iter
        (fun (n, s) ->
          if n = 4 then
            ignore (Conquer.Clean.answers ~config:spill_config s q10.sql))
        sessions;
      spills := counter "engine.exec.join_spills" - before);
  if !spills = 0 then failwith "forced spill config spilled no join";
  let tspill =
    time_runs ~name:"q10/shards4-spill" (fun () ->
        let _, s = List.find (fun (n, _) -> n = 4) sessions in
        Conquer.Clean.answers ~config:spill_config s q10.sql)
  in
  Printf.printf
    "Q10 at 4 shards with forced join spill: %.2fms (%d partition joins \
     spilled)\n"
    (ms tspill) !spills;
  note "scatter partitions one table by cluster hash and broadcasts the";
  note "        rest; partial aggregates merge in first-occurrence order, so";
  note "        answers are bag-identical to the unsharded run at every count"

(* ------------------------------------------------------------------ *)
(* BENCH_<n>.json                                                      *)
(* ------------------------------------------------------------------ *)

(* The timed reports run with telemetry disabled, precisely so the
   instrumentation cannot distort the numbers.  Run one fully
   instrumented query afterwards so the metrics snapshot embedded in
   the JSON is populated. *)
let populate_metrics () =
  Telemetry.Control.with_enabled (fun () ->
      let s = Conquer.Clean.create (figure2_db ()) in
      ignore
        (Conquer.Clean.answers s
           "select o.id, c.id from orders o, customer c \
            where o.cidfk = c.id and c.balance > 10000"))

let next_bench_path () =
  let rec free n =
    let path = Printf.sprintf "BENCH_%d.json" n in
    if Sys.file_exists path then free (n + 1) else path
  in
  free 2

let write_bench_json ~reports path =
  let js = Telemetry.Export.json_string in
  let jf = Telemetry.Export.json_float in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"conquer-bench/1\"";
  Buffer.add_string buf (Printf.sprintf ",\"generated_at\":%s" (jf (Unix.time ())));
  Buffer.add_string buf
    (Printf.sprintf ",\"quick\":%b,\"reports\":[%s]" !quick
       (String.concat "," (List.map js reports)));
  Buffer.add_string buf ",\"samples\":[";
  List.iteri
    (fun i (report, name, (s : Telemetry.Timing.stats)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"report\":%s,\"name\":%s,\"runs\":%d,\"min_ms\":%s,\"median_ms\":%s,\"max_ms\":%s}"
           (js report) (js name) s.runs
           (jf (ms s.min))
           (jf (ms s.median))
           (jf (ms s.max))))
    (List.rev !samples);
  Buffer.add_string buf "],\"metrics\":";
  Buffer.add_string buf (Telemetry.Export.metrics_json ());
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Printf.printf "\nwrote %d sample(s) to %s\n" (List.length !samples) path

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let reports =
  [
    ("example", report_example);
    ("table1", report_table1);
    ("table2", report_table2);
    ("table3", report_table3);
    ("table4", report_table4);
    ("fig7", report_fig7);
    ("fig8", report_fig8);
    ("fig9", report_fig9);
    ("fig10", report_fig10);
    ("ablation-oracle", report_ablation_oracle);
    ("ablation-independent", report_ablation_independent);
    ("ablation-distance", report_ablation_distance);
    ("ablation-index", report_ablation_index);
    ("ablation-survivorship", report_ablation_survivorship);
    ("ext-expected", report_ext_expected);
    ("ext-matcher", report_ext_matcher);
    ("ext-distribution", report_ext_distribution);
    ("ext-sampler", report_ext_sampler);
    ("parallel", report_parallel);
    ("serve", report_serve);
    ("update", report_update);
    ("shard", report_shard);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let selected = ref [] in
  let bechamel = ref true in
  let json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--no-bechamel" :: rest ->
      bechamel := false;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--list" :: _ ->
      List.iter (fun (name, _) -> print_endline name) reports;
      exit 0
    | "--report" :: name :: rest ->
      if not (List.mem_assoc name reports) then begin
        Printf.eprintf "unknown report %s (try --list)\n" name;
        exit 1
      end;
      selected := !selected @ [ name ];
      bechamel := false;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline
        "usage: main.exe [--quick] [--no-bechamel] [--report NAME]... \
         [--json FILE] [--list]";
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 1
  in
  parse (List.tl args);
  let to_run =
    match !selected with [] -> List.map fst reports | names -> names
  in
  Printf.printf
    "ConQuer benchmark harness — reproducing the evaluation of\n\
     \"Clean Answers over Dirty Databases\" (ICDE 2006)%s\n"
    (if !quick then " [quick mode]" else "");
  List.iter
    (fun name ->
      current_report := name;
      (List.assoc name reports) ())
    to_run;
  if !bechamel then begin
    current_report := "bechamel";
    run_bechamel ()
  end;
  populate_metrics ();
  let path = match !json_path with Some p -> p | None -> next_bench_path () in
  write_bench_json ~reports:to_run path
