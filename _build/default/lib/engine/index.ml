open Dirty

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = { attr : string; buckets : int list Vtbl.t; cardinality : int }

let build rel attr =
  let idx = Schema.index_of (Relation.schema rel) attr in
  let buckets = Vtbl.create (max 16 (Relation.cardinality rel)) in
  let n = Relation.cardinality rel in
  (* iterate backwards so that consing preserves row order *)
  for i = n - 1 downto 0 do
    let key = (Relation.get rel i).(idx) in
    let existing = Option.value ~default:[] (Vtbl.find_opt buckets key) in
    Vtbl.replace buckets key (i :: existing)
  done;
  { attr; buckets; cardinality = n }

let attr t = t.attr
let lookup t key = Option.value ~default:[] (Vtbl.find_opt t.buckets key)
let distinct_keys t = Vtbl.length t.buckets
let cardinality t = t.cardinality
