open Dirty

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  predicted_pairs : int;
  true_pairs : int;
  common_pairs : int;
}

let pairs_in_cluster members =
  let m = List.length members in
  m * (m - 1) / 2

let total_pairs clustering =
  Cluster.fold (fun _ members acc -> acc + pairs_in_cluster members) clustering 0

let pairwise ~truth predicted =
  if Cluster.num_rows truth <> Cluster.num_rows predicted then
    invalid_arg "Evaluate.pairwise: row count mismatch";
  let predicted_pairs = total_pairs predicted in
  let true_pairs = total_pairs truth in
  (* common pairs: within every predicted cluster, group members by
     their true cluster and count pairs inside each group *)
  let common = ref 0 in
  Cluster.iter
    (fun _ members ->
      let by_truth = Hashtbl.create 8 in
      List.iter
        (fun row ->
          let t = Value.to_string (Cluster.cluster_of_row truth row) in
          Hashtbl.replace by_truth t
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_truth t)))
        members;
      Hashtbl.iter (fun _ m -> common := !common + (m * (m - 1) / 2)) by_truth)
    predicted;
  let precision =
    if predicted_pairs = 0 then 1.0
    else float_of_int !common /. float_of_int predicted_pairs
  in
  let recall =
    if true_pairs = 0 then 1.0 else float_of_int !common /. float_of_int true_pairs
  in
  let f1 =
    if precision +. recall <= 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  {
    precision;
    recall;
    f1;
    predicted_pairs;
    true_pairs;
    common_pairs = !common;
  }

let pp fmt s =
  Format.fprintf fmt "precision %.3f recall %.3f f1 %.3f (pairs: %d/%d/%d)"
    s.precision s.recall s.f1 s.common_pairs s.predicted_pairs s.true_pairs
