(* Fault injection for the robustness suite: seeded-problem databases,
   file corruption, and simulated crashes of Store.save. *)

open Dirty

let v_s s = Value.String s
let v_f f = Value.Float f

let with_temp_dir f =
  let dir = Filename.temp_file "conquer" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---- seeded problems ----

   One dirty database exhibiting every injectable Validate diagnostic
   at once, built with [~validate:false] so construction succeeds:

   - cust/c1: probabilities sum to 1.3        -> Cluster_sum_mismatch
   - cust/c2: a probability that is a string  -> Non_numeric_probability
   - cust/c3: a NaN probability               -> Nan_probability
   - cust/c4: -0.2 and 1.2 (sum still 1)      -> Probability_out_of_range x2
   - cust/c5: probabilities 0 and 1           -> Zero_probability (warning)
   - cust/c6: two rows identical off-prob     -> Duplicate_tuple (warning)
   - cust/c7: a well-formed cluster (control)
   - orders/o1: custfk = "zzz"                -> Dangling_reference
     (against reference orders.custfk -> cust) *)

let cust_schema =
  Schema.make
    [ ("id", Value.TString); ("name", Value.TString); ("prob", Value.TFloat) ]

let orders_schema =
  Schema.make
    [ ("id", Value.TString); ("custfk", Value.TString); ("prob", Value.TFloat) ]

let seeded_reference : Validate.reference =
  { ref_table = "orders"; fk_attr = "custfk"; target = "cust" }

let seeded_db () =
  let cust =
    Relation.create cust_schema
      [
        [| v_s "c1"; v_s "Ann"; v_f 0.7 |];
        [| v_s "c1"; v_s "Anne"; v_f 0.6 |];
        [| v_s "c2"; v_s "Bob"; v_s "lots" |];
        [| v_s "c2"; v_s "Rob"; v_f 1.0 |];
        [| v_s "c3"; v_s "Cal"; v_f Float.nan |];
        [| v_s "c3"; v_s "Carl"; v_f 1.0 |];
        [| v_s "c4"; v_s "Dee"; v_f (-0.2) |];
        [| v_s "c4"; v_s "Di"; v_f 1.2 |];
        [| v_s "c5"; v_s "Ed"; v_f 0.0 |];
        [| v_s "c5"; v_s "Eddy"; v_f 1.0 |];
        [| v_s "c6"; v_s "Flo"; v_f 0.5 |];
        [| v_s "c6"; v_s "Flo"; v_f 0.5 |];
        [| v_s "c7"; v_s "Gus"; v_f 1.0 |];
      ]
  in
  let orders =
    Relation.create orders_schema
      [
        [| v_s "o1"; v_s "zzz"; v_f 1.0 |];
        [| v_s "o2"; v_s "c7"; v_f 1.0 |];
      ]
  in
  let db =
    Dirty_db.add_table Dirty_db.empty
      (Dirty_db.make_table ~validate:false ~name:"cust" ~id_attr:"id"
         ~prob_attr:"prob" cust)
  in
  Dirty_db.add_table db
    (Dirty_db.make_table ~validate:false ~name:"orders" ~id_attr:"id"
       ~prob_attr:"prob" orders)

(* ---- file corruption ---- *)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Simulate a torn (non-atomic) write: keep only the first [keep]
   bytes of the file, cutting mid-row. *)
let truncate_file path ~keep =
  let s = read_bytes path in
  write_bytes path (String.sub s 0 (min keep (String.length s)))

(* ---- simulated crashes of Store.save ----

   [Store.save] writes each table CSV atomically (temp file + rename),
   then the manifest, last.  A crash can therefore be observed as: some
   complete new table files, possibly a stray temp file from the write
   in flight, and the manifest of the *previous* save (or none).
   [interrupted_save] reproduces exactly that on-disk state: the first
   [tables_written] tables of [db] land completely, a partial temp file
   is left behind for the next one, and the manifest is not touched. *)

let interrupted_save ?(tables_written = 1) dir db =
  let tables = Dirty_db.tables db in
  List.iteri
    (fun i (t : Dirty_db.table) ->
      if i < tables_written then
        Csv.write_file (Filename.concat dir (t.name ^ ".csv")) t.relation
      else if i = tables_written then begin
        (* the write that was in flight: a half-written temp file *)
        let tmp = Filename.temp_file ~temp_dir:dir ".store-" ".tmp" in
        write_bytes tmp "id,na"
      end)
    tables
