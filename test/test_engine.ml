(* Tests for the query engine: expression evaluation, operators,
   planner, indexes, statistics. *)

open Dirty

let v_s s = Value.String s
let v_i i = Value.Int i
let v_f f = Value.Float f

let db () =
  let engine = Engine.Database.create () in
  let emp =
    Relation.create
      (Schema.make
         [
           ("eid", Value.TInt);
           ("name", Value.TString);
           ("dept", Value.TInt);
           ("salary", Value.TInt);
         ])
      [
        [| v_i 1; v_s "ann"; v_i 10; v_i 100 |];
        [| v_i 2; v_s "bob"; v_i 10; v_i 200 |];
        [| v_i 3; v_s "carol"; v_i 20; v_i 300 |];
        [| v_i 4; v_s "dan"; v_i 20; v_i 400 |];
        [| v_i 5; v_s "eve"; v_i 30; Value.Null |];
      ]
  in
  let dept =
    Relation.create
      (Schema.make [ ("did", Value.TInt); ("dname", Value.TString) ])
      [
        [| v_i 10; v_s "eng" |];
        [| v_i 20; v_s "sales" |];
        [| v_i 40; v_s "empty" |];
      ]
  in
  Engine.Database.add_relation engine ~name:"emp" emp;
  Engine.Database.add_relation engine ~name:"dept" dept;
  engine

let run ?config sql = Engine.Database.query ?config (db ()) sql

(* ---- expression evaluation ---- *)

let eval_expr expr_sql row schema =
  let e = Sql.Parser.parse_expr expr_sql in
  Engine.Expr.compile schema e row

let one_row_schema = Schema.make [ ("x", Value.TInt); ("y", Value.TFloat); ("s", Value.TString); ("n", Value.TInt) ]
let one_row = [| v_i 6; v_f 2.5; v_s "hello"; Value.Null |]

let check_value msg expected actual =
  if not (Value.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Value.to_string expected)
      (Value.to_string actual)

let test_expr_arithmetic () =
  check_value "int add" (v_i 8) (eval_expr "x + 2" one_row one_row_schema);
  check_value "mixed mul" (v_f 15.0) (eval_expr "x * y" one_row one_row_schema);
  check_value "int div" (v_i 3) (eval_expr "x / 2" one_row one_row_schema);
  check_value "float div" (v_f 2.4) (eval_expr "x / 2.5" one_row one_row_schema);
  check_value "neg" (v_i (-6)) (eval_expr "-x" one_row one_row_schema);
  check_value "null propagates" Value.Null (eval_expr "n + 1" one_row one_row_schema)

let test_expr_division_by_zero () =
  match eval_expr "x / 0" one_row one_row_schema with
  | exception Engine.Expr.Type_error _ -> ()
  | _ -> Alcotest.fail "division by zero accepted"

let test_expr_comparisons () =
  check_value "lt" (Value.Bool true) (eval_expr "x < 10" one_row one_row_schema);
  check_value "between" (Value.Bool true)
    (eval_expr "x between 5 and 7" one_row one_row_schema);
  check_value "null comparison false" (Value.Bool false)
    (eval_expr "n > 0" one_row one_row_schema);
  check_value "is null" (Value.Bool true) (eval_expr "n is null" one_row one_row_schema);
  check_value "in list" (Value.Bool true)
    (eval_expr "s in ('hello', 'world')" one_row one_row_schema)

let test_expr_like () =
  let m = Engine.Expr.like_matcher in
  Alcotest.(check bool) "prefix" true (m "he%" "hello");
  Alcotest.(check bool) "suffix" true (m "%llo" "hello");
  Alcotest.(check bool) "infix" true (m "%ell%" "hello");
  Alcotest.(check bool) "underscore" true (m "h_llo" "hello");
  Alcotest.(check bool) "no match" false (m "h_llo" "heello");
  Alcotest.(check bool) "exact" true (m "hello" "hello");
  Alcotest.(check bool) "empty pattern" false (m "" "x");
  Alcotest.(check bool) "percent only" true (m "%" "");
  Alcotest.(check bool) "multi wildcard" true (m "%a%b%" "xxaxxbxx")

let test_expr_resolution_errors () =
  let schema = Schema.make [ ("t.a", Value.TInt); ("u.a", Value.TInt) ] in
  (match Engine.Expr.resolve schema { table = None; name = "a" } with
  | exception Engine.Expr.Ambiguous_column _ -> ()
  | _ -> Alcotest.fail "ambiguity not detected");
  (match Engine.Expr.resolve schema { table = None; name = "zz" } with
  | exception Engine.Expr.Unbound_column _ -> ()
  | _ -> Alcotest.fail "unbound not detected");
  Alcotest.(check int) "qualified" 1
    (Engine.Expr.resolve schema { table = Some "u"; name = "a" })

(* ---- scans, filters, projections ---- *)

let test_scan_and_filter () =
  let r = run "select name from emp where salary > 150" in
  Alcotest.(check int) "three rows" 3 (Relation.cardinality r)

let test_projection_expressions () =
  let r = run "select eid * 10 as tens from emp where eid = 2" in
  check_value "computed" (v_i 20) (Relation.get r 0).(0)

let test_select_star () =
  let r = run "select * from dept" in
  Alcotest.(check int) "all columns" 2 (Schema.arity (Relation.schema r));
  Alcotest.(check int) "all rows" 3 (Relation.cardinality r)

let test_null_filtered () =
  let r = run "select name from emp where salary > 0" in
  (* eve's NULL salary fails the predicate *)
  Alcotest.(check int) "null row dropped" 4 (Relation.cardinality r)

(* ---- joins ---- *)

let test_hash_join () =
  let r = run "select e.name, d.dname from emp e, dept d where e.dept = d.did" in
  Alcotest.(check int) "four matches" 4 (Relation.cardinality r)

let test_join_no_match () =
  let r =
    run "select e.name from emp e, dept d where e.dept = d.did and d.dname = 'empty'"
  in
  Alcotest.(check int) "empty join" 0 (Relation.cardinality r)

let test_cross_product () =
  let r = run "select e.eid, d.did from emp e, dept d" in
  Alcotest.(check int) "5 x 3" 15 (Relation.cardinality r)

let test_index_join_equivalence () =
  let engine = db () in
  Engine.Database.create_index engine ~table:"dept" ~attr:"did";
  Engine.Database.analyze_all engine;
  let sql = "select e.name, d.dname from emp e, dept d where e.dept = d.did order by e.name" in
  let with_index = Engine.Database.query engine sql in
  let without =
    Engine.Database.query
      ~config:{ Engine.Planner.default_config with use_indexes = false }
      engine sql
  in
  Alcotest.(check bool) "same results" true
    (Relation.equal_as_bags with_index without)

let test_index_join_used () =
  let engine = db () in
  Engine.Database.create_index engine ~table:"dept" ~attr:"did";
  Engine.Database.analyze_all engine;
  let plan =
    Engine.Database.explain engine
      "select e.name, d.dname from emp e, dept d where e.dept = d.did"
  in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "plan uses the index" true (contains plan "IndexJoin")

let test_left_outer_join () =
  let r =
    run
      "select d.dname, e.name from dept d left outer join emp e on e.dept = d.did \
       order by d.dname"
  in
  (* eng: 2 matches, sales: 2 matches, empty: null-padded once *)
  Alcotest.(check int) "five rows" 5 (Relation.cardinality r);
  let empty_row = Relation.get r 0 in
  Alcotest.(check bool) "empty dept kept" true
    (Value.equal empty_row.(0) (v_s "empty") && Value.is_null empty_row.(1))

let test_left_outer_join_residual_on () =
  (* extra non-equality condition inside ON restricts matches without
     dropping left rows *)
  let r =
    run
      "select d.dname, e.name from dept d \
       left join emp e on e.dept = d.did and e.salary > 150 \
       order by d.dname, e.name"
  in
  (* eng keeps only bob; sales keeps carol and dan; empty null-padded *)
  Alcotest.(check int) "four rows" 4 (Relation.cardinality r);
  let eng_rows =
    Relation.row_list (Relation.filter (fun row -> Value.equal row.(0) (v_s "eng")) r)
  in
  (match eng_rows with
  | [ row ] -> Alcotest.(check bool) "bob only" true (Value.equal row.(1) (v_s "bob"))
  | _ -> Alcotest.fail "expected one eng row")

let test_left_outer_join_nested_loop_path () =
  (* a pure inequality ON condition exercises the nested-loop path *)
  let r =
    run
      "select d.did, e.eid from dept d left join emp e on e.salary > 250 and e.dept = 20 \
       order by d.did, e.eid"
  in
  (* every dept row pairs with carol(300) and dan(400): 3 * 2 = 6 *)
  Alcotest.(check int) "six rows" 6 (Relation.cardinality r)

let test_left_outer_join_all_match () =
  let inner =
    run "select e.name, d.dname from emp e, dept d where e.dept = d.did"
  in
  let outer =
    run "select e.name, d.dname from emp e left join dept d on e.dept = d.did"
  in
  (* eve's dept 30 has no dept row: outer keeps her with NULL *)
  Alcotest.(check int) "outer adds the dangling row"
    (Relation.cardinality inner + 1)
    (Relation.cardinality outer)

let test_outer_join_not_rewritable () =
  let db = Fixtures.figure2_db () in
  let s = Conquer.Clean.create db in
  let sql =
    "select o.id, c.id from orders o left join customer c on o.cidfk = c.id"
  in
  match Conquer.Clean.check s sql with
  | Ok _ -> Alcotest.fail "outer join should not be rewritable"
  | Error vs ->
    Alcotest.(check bool) "not-SPJ violation" true
      (List.exists
         (function Conquer.Rewritable.Not_spj _ -> true | _ -> false)
         vs)

let test_pushdown_equivalence () =
  let sql =
    "select e.name from emp e, dept d \
     where e.dept = d.did and e.salary > 150 and d.dname = 'sales'"
  in
  let pushed = run sql in
  let unpushed =
    run ~config:{ Engine.Planner.default_config with pushdown = false } sql
  in
  Alcotest.(check bool) "pushdown preserves results" true
    (Relation.equal_as_bags pushed unpushed);
  Alcotest.(check int) "two sales rows above 150" 2 (Relation.cardinality pushed)

(* ---- aggregation ---- *)

let test_aggregates_global () =
  let r = run "select count(*), sum(salary), min(salary), max(salary), avg(salary) from emp" in
  let row = Relation.get r 0 in
  check_value "count counts all rows" (v_i 5) row.(0);
  check_value "sum skips nulls" (v_i 1000) row.(1);
  check_value "min" (v_i 100) row.(2);
  check_value "max" (v_i 400) row.(3);
  check_value "avg over non-nulls" (v_f 250.0) row.(4)

let test_count_column_skips_nulls () =
  let r = run "select count(salary) from emp" in
  check_value "count(col)" (v_i 4) (Relation.get r 0).(0)

let test_aggregate_empty_input () =
  let r = run "select count(*), sum(salary) from emp where eid > 100" in
  let row = Relation.get r 0 in
  check_value "count 0" (v_i 0) row.(0);
  check_value "sum null" Value.Null row.(1)

let test_group_by () =
  let r = run "select dept, count(*), sum(salary) from emp group by dept order by dept" in
  Alcotest.(check int) "three groups" 3 (Relation.cardinality r);
  let row = Relation.get r 0 in
  check_value "dept 10" (v_i 10) row.(0);
  check_value "count 2" (v_i 2) row.(1);
  check_value "sum 300" (v_i 300) row.(2)

let test_group_by_empty_input_no_groups () =
  let r = run "select dept, count(*) from emp where eid > 100 group by dept" in
  Alcotest.(check int) "no groups" 0 (Relation.cardinality r)

let test_having () =
  let r = run "select dept, count(*) from emp group by dept having count(*) > 1" in
  Alcotest.(check int) "two surviving groups" 2 (Relation.cardinality r)

let test_group_expression () =
  (* grouping on a computed expression, as the rewritten Q3 does *)
  let r =
    run
      "select salary * 2 as double, count(*) from emp \
       where salary is not null group by salary * 2 order by double"
  in
  Alcotest.(check int) "four groups" 4 (Relation.cardinality r);
  check_value "first" (v_i 200) (Relation.get r 0).(0)

let test_aggregate_of_expression () =
  let r = run "select sum(salary * 2) from emp" in
  check_value "sum of products" (v_i 2000) (Relation.get r 0).(0)

(* ---- sort / distinct / limit ---- *)

let test_order_by () =
  let r = run "select name, salary from emp where salary is not null order by salary desc" in
  check_value "largest first" (v_s "dan") (Relation.get r 0).(0);
  check_value "smallest last" (v_s "ann") (Relation.get r 3).(0)

let test_order_by_alias () =
  let r =
    run "select name, salary * 2 as double from emp where salary is not null order by double desc"
  in
  check_value "alias sort" (v_s "dan") (Relation.get r 0).(0)

let test_order_by_unprojected_column () =
  (* sorting on a column that is not selected (sort below project) *)
  let r = run "select name from emp where salary is not null order by salary desc" in
  check_value "sorted by hidden column" (v_s "dan") (Relation.get r 0).(0)

let test_distinct () =
  let r = run "select distinct dept from emp" in
  Alcotest.(check int) "three departments" 3 (Relation.cardinality r)

let test_limit () =
  let r = run "select eid from emp order by eid limit 2" in
  Alcotest.(check int) "limit" 2 (Relation.cardinality r);
  check_value "first" (v_i 1) (Relation.get r 0).(0)

(* ---- planner errors ---- *)

let test_unknown_table () =
  match run "select x from nonexistent" with
  | exception Engine.Planner.Plan_error _ -> ()
  | _ -> Alcotest.fail "unknown table accepted"

let test_duplicate_alias () =
  match run "select 1 from emp e, dept e" with
  | exception Engine.Planner.Plan_error _ -> ()
  | _ -> Alcotest.fail "duplicate alias accepted"

let test_ambiguous_column_rejected () =
  (* both emp and dept joined; a bogus shared name *)
  match run "select name from emp e, dept d where e.dept = d.did and zzz = 1" with
  | exception Engine.Planner.Plan_error _ -> ()
  | _ -> Alcotest.fail "unbound column accepted"

(* ---- statistics ---- *)

let test_stats () =
  let engine = db () in
  Engine.Database.analyze engine "emp";
  match Engine.Database.stats engine "emp" with
  | None -> Alcotest.fail "no stats"
  | Some stats ->
    Alcotest.(check int) "rows" 5 stats.Engine.Stats.rows;
    (match Engine.Stats.column stats "dept" with
    | Some c ->
      Alcotest.(check int) "distinct depts" 3 c.Engine.Stats.distinct;
      Alcotest.(check int) "no nulls" 0 c.Engine.Stats.nulls
    | None -> Alcotest.fail "no dept stats");
    (match Engine.Stats.column stats "salary" with
    | Some c -> Alcotest.(check int) "one null" 1 c.Engine.Stats.nulls
    | None -> Alcotest.fail "no salary stats")

let test_histograms () =
  (* 100 rows with values 1..100: the equi-depth histogram should
     estimate range fractions accurately *)
  let rel =
    Relation.create
      (Schema.make [ ("v", Value.TInt) ])
      (List.init 100 (fun i -> [| v_i (i + 1) |]))
  in
  let stats = Engine.Stats.analyze rel in
  match Engine.Stats.column stats "v" with
  | None -> Alcotest.fail "no stats"
  | Some { histogram = None; _ } -> Alcotest.fail "no histogram"
  | Some { histogram = Some hist; _ } ->
    let frac ?lo ?hi () = Engine.Stats.range_fraction hist ?lo ?hi () in
    Alcotest.(check bool) "half below 50" true
      (Float.abs (frac ~hi:50.0 () -. 0.5) < 0.06);
    Alcotest.(check bool) "quarter in (25,50]" true
      (Float.abs (frac ~lo:25.0 ~hi:50.0 () -. 0.25) < 0.06);
    Fixtures.check_float "everything" 1.0 (frac ());
    Fixtures.check_float "empty range" 0.0 (frac ~lo:60.0 ~hi:40.0 ());
    Alcotest.(check bool) "below min" true (frac ~hi:0.5 () < 0.05)

let test_histogram_boundary_cdf () =
  (* Regression for the binary-search rewrite of [range_fraction]: 64
     values over 32 buckets gives depth 2 and bucket bounds exactly at
     2, 4, ..., 64, so the CDF at every bound is pinned to
     (i+1)/buckets with no interpolation slack.  The old linear scan
     and the binary search must agree on these boundary probes. *)
  let rel =
    Relation.create
      (Schema.make [ ("v", Value.TInt) ])
      (List.init 64 (fun i -> [| v_i (i + 1) |]))
  in
  let stats = Engine.Stats.analyze rel in
  match Engine.Stats.column stats "v" with
  | None | Some { histogram = None; _ } -> Alcotest.fail "no histogram"
  | Some { histogram = Some hist; _ } ->
    let buckets = Array.length hist.Engine.Stats.bounds in
    Alcotest.(check int) "32 buckets" 32 buckets;
    for i = 0 to buckets - 1 do
      Fixtures.check_float
        (Printf.sprintf "cdf at bound %d" i)
        (float_of_int (i + 1) /. float_of_int buckets)
        (Engine.Stats.range_fraction hist ~hi:hist.Engine.Stats.bounds.(i) ())
    done;
    (* half-way into a bucket interpolates linearly *)
    Fixtures.check_float "midpoint of the second bucket" (1.5 /. 32.0)
      (Engine.Stats.range_fraction hist ~hi:3.0 ());
    (* probes strictly outside the bounds stay clamped *)
    Fixtures.check_float "below the first bound" 0.0
      (Engine.Stats.range_fraction hist ~hi:1.0 ());
    Fixtures.check_float "above the last bound" 1.0
      (Engine.Stats.range_fraction hist ~lo:0.0 ~hi:1000.0 ())

let test_histogram_selectivity () =
  let rel =
    Relation.create
      (Schema.make [ ("v", Value.TInt) ])
      (List.init 100 (fun i -> [| v_i (i + 1) |]))
  in
  let stats = Some (Engine.Stats.analyze rel) in
  let sel sql = Engine.Stats.selectivity stats (Sql.Parser.parse_expr sql) in
  Alcotest.(check bool) "v < 20 is selective" true
    (Float.abs (sel "v < 20" -. 0.2) < 0.06);
  Alcotest.(check bool) "v > 80 is selective" true
    (Float.abs (sel "v > 80" -. 0.2) < 0.06);
  Alcotest.(check bool) "between uses the histogram" true
    (Float.abs (sel "v between 40 and 60" -. 0.2) < 0.06);
  (* string columns keep the default *)
  let rel2 =
    Relation.create
      (Schema.make [ ("s", Value.TString) ])
      [ [| v_s "a" |]; [| v_s "b" |] ]
  in
  let stats2 = Some (Engine.Stats.analyze rel2) in
  Fixtures.check_float "no histogram: default" (1.0 /. 3.0)
    (Engine.Stats.selectivity stats2 (Sql.Parser.parse_expr "s < 'b'"))

let test_selectivity () =
  let engine = db () in
  Engine.Database.analyze engine "emp";
  let stats = Engine.Database.stats engine "emp" in
  let sel sql = Engine.Stats.selectivity stats (Sql.Parser.parse_expr sql) in
  Alcotest.(check (float 1e-9)) "equality uses distinct" (1.0 /. 3.0)
    (sel "dept = 10");
  Alcotest.(check bool) "conjunction shrinks" true
    (sel "dept = 10 and salary > 100" < sel "dept = 10");
  Alcotest.(check bool) "range default" true (sel "salary > 100" > 0.0)

(* ---- profiling ---- *)

let test_run_profiled () =
  let engine = db () in
  let sql = "select e.name, d.dname from emp e, dept d where e.dept = d.did" in
  let rel, profile = Engine.Database.query_profiled engine sql in
  Alcotest.(check int) "result rows" 4 (Relation.cardinality rel);
  Alcotest.(check string) "root operator" "Project" profile.Engine.Exec.operator;
  Alcotest.(check int) "root row count" 4 profile.Engine.Exec.out_rows;
  (* the join and its two scans appear beneath the projection *)
  let rec operators (p : Engine.Exec.profile) =
    p.operator :: List.concat_map operators p.children
  in
  let ops = operators profile in
  Alcotest.(check bool) "has a join" true
    (List.exists
       (fun o ->
         o = "HashJoin" || String.length o >= 9 && String.sub o 0 9 = "IndexJoin")
       ops);
  Alcotest.(check bool) "scans both tables" true
    (List.mem "Scan emp" ops && List.mem "Scan dept" ops);
  (* timings are nonnegative and the root dominates its children *)
  let rec check_times (p : Engine.Exec.profile) =
    Alcotest.(check bool) "time nonneg" true (p.elapsed >= 0.0);
    List.iter check_times p.children
  in
  check_times profile

let test_explain_analyze_text () =
  let engine = db () in
  let text =
    Engine.Database.explain_analyze engine "select name from emp where salary > 150"
  in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions rows" true (contains "rows=");
  Alcotest.(check bool) "mentions the scan" true (contains "Scan emp")

let test_explain_analyze_row_counts () =
  (* per-operator row counts are the actual cardinalities, not
     estimates: the scans see whole tables, the filter and everything
     above it see the surviving rows *)
  let engine = db () in
  let sql = "select e.name, d.dname from emp e, dept d where e.dept = d.did" in
  let _, profile = Engine.Database.query_profiled engine sql in
  let rec find op (p : Engine.Exec.profile) =
    if p.operator = op then Some p
    else List.find_map (find op) p.children
  in
  let rows op =
    match find op profile with
    | Some p -> p.out_rows
    | None -> Alcotest.failf "no %s operator in the profile" op
  in
  Alcotest.(check int) "projection emits the join result" 4 (rows "Project");
  Alcotest.(check int) "emp scanned in full" 5 (rows "Scan emp");
  Alcotest.(check int) "dept scanned in full" 3 (rows "Scan dept");
  let text = Engine.Database.explain_analyze engine sql in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rendered counts match" true (contains "rows=4");
  Alcotest.(check bool) "scan counts rendered" true (contains "rows=5")

let test_operator_times_monotone () =
  (* operator times are inclusive of their inputs, so they must be
     monotone along every root-to-leaf path; and across plans, a scan
     over many rows must not be cheaper than one over a handful *)
  let engine = db () in
  let _, profile =
    Engine.Database.query_profiled engine
      "select e.name, d.dname from emp e, dept d where e.dept = d.did"
  in
  let rec check_parent_covers (p : Engine.Exec.profile) =
    List.iter
      (fun (child : Engine.Exec.profile) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s covers %s" p.operator child.operator)
          true
          (p.elapsed +. 1e-9 >= child.elapsed);
        check_parent_covers child)
      p.children
  in
  check_parent_covers profile;
  let scan_time n =
    let engine = Engine.Database.create () in
    let rel =
      Relation.create
        (Schema.make [ ("v", Value.TInt) ])
        (List.init n (fun i -> [| v_i i |]))
    in
    Engine.Database.add_relation engine ~name:"t" rel;
    (* median of repeated profiled runs smooths scheduler noise *)
    let samples =
      List.init 5 (fun _ ->
          let _, p = Engine.Database.query_profiled engine "select v from t" in
          let rec total (p : Engine.Exec.profile) =
            List.fold_left (fun acc c -> acc +. total c) p.elapsed p.children
          in
          total p)
    in
    (Telemetry.Timing.of_samples samples).median
  in
  Alcotest.(check bool) "times grow with row counts" true
    (scan_time 50_000 >= scan_time 50)

(* ---- indexes ---- *)

let test_index_lookup () =
  let rel =
    Relation.create
      (Schema.make [ ("k", Value.TInt); ("v", Value.TString) ])
      [
        [| v_i 1; v_s "a" |]; [| v_i 2; v_s "b" |]; [| v_i 1; v_s "c" |];
      ]
  in
  let idx = Engine.Index.build rel "k" in
  Alcotest.(check (list int)) "bucket" [ 0; 2 ] (Engine.Index.lookup idx (v_i 1));
  Alcotest.(check (list int)) "missing" [] (Engine.Index.lookup idx (v_i 99));
  Alcotest.(check int) "distinct keys" 2 (Engine.Index.distinct_keys idx)

let () =
  Alcotest.run "engine"
    [
      ( "expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arithmetic;
          Alcotest.test_case "division by zero" `Quick test_expr_division_by_zero;
          Alcotest.test_case "comparisons" `Quick test_expr_comparisons;
          Alcotest.test_case "like" `Quick test_expr_like;
          Alcotest.test_case "resolution errors" `Quick test_expr_resolution_errors;
        ] );
      ( "scan/filter/project",
        [
          Alcotest.test_case "scan+filter" `Quick test_scan_and_filter;
          Alcotest.test_case "projection expressions" `Quick
            test_projection_expressions;
          Alcotest.test_case "select star" `Quick test_select_star;
          Alcotest.test_case "null filtered" `Quick test_null_filtered;
        ] );
      ( "joins",
        [
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "empty join" `Quick test_join_no_match;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "index join equivalence" `Quick
            test_index_join_equivalence;
          Alcotest.test_case "index join used" `Quick test_index_join_used;
          Alcotest.test_case "pushdown equivalence" `Quick
            test_pushdown_equivalence;
          Alcotest.test_case "left outer join" `Quick test_left_outer_join;
          Alcotest.test_case "outer join residual ON" `Quick
            test_left_outer_join_residual_on;
          Alcotest.test_case "outer join nested loop" `Quick
            test_left_outer_join_nested_loop_path;
          Alcotest.test_case "outer join keeps dangling rows" `Quick
            test_left_outer_join_all_match;
          Alcotest.test_case "outer join not rewritable" `Quick
            test_outer_join_not_rewritable;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "global aggregates" `Quick test_aggregates_global;
          Alcotest.test_case "count(col) skips nulls" `Quick
            test_count_column_skips_nulls;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "group by empty input" `Quick
            test_group_by_empty_input_no_groups;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "group by expression" `Quick test_group_expression;
          Alcotest.test_case "aggregate of expression" `Quick
            test_aggregate_of_expression;
        ] );
      ( "sort/distinct/limit",
        [
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "order by alias" `Quick test_order_by_alias;
          Alcotest.test_case "order by unprojected" `Quick
            test_order_by_unprojected_column;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "limit" `Quick test_limit;
        ] );
      ( "planner errors",
        [
          Alcotest.test_case "unknown table" `Quick test_unknown_table;
          Alcotest.test_case "duplicate alias" `Quick test_duplicate_alias;
          Alcotest.test_case "unbound column" `Quick
            test_ambiguous_column_rejected;
        ] );
      ( "stats",
        [
          Alcotest.test_case "analyze" `Quick test_stats;
          Alcotest.test_case "selectivity" `Quick test_selectivity;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "histogram boundary cdf" `Quick
            test_histogram_boundary_cdf;
          Alcotest.test_case "histogram selectivity" `Quick
            test_histogram_selectivity;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "run_profiled" `Quick test_run_profiled;
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze_text;
          Alcotest.test_case "explain analyze row counts" `Quick
            test_explain_analyze_row_counts;
          Alcotest.test_case "operator times monotone" `Quick
            test_operator_times_monotone;
        ] );
      ("index", [ Alcotest.test_case "lookup" `Quick test_index_lookup ]);
    ]
