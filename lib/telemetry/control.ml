(* The process-wide telemetry switch.

   Telemetry is off by default; every recording operation (span entry,
   counter increment, histogram observation) first checks this flag,
   so the disabled cost is one atomic load and a branch per
   instrumentation site.  The overhead budget (DESIGN.md §5d) is <3%
   on the tier-1 test suite with the switch off.

   The flag is an [Atomic.t] so that worker domains spawned by
   [Engine.Parallel] observe enable/disable without data races; an
   [Atomic.get] compiles to a plain load on the usual platforms, so
   the disabled cost is unchanged. *)

let flag = Atomic.make false

let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

(* run [f] with telemetry forced on (restoring the previous state) *)
let with_enabled f =
  let saved = Atomic.get flag in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag saved) f

let with_disabled f =
  let saved = Atomic.get flag in
  Atomic.set flag false;
  Fun.protect ~finally:(fun () -> Atomic.set flag saved) f
