lib/conquer/provenance.ml: Array Clean Dirty Dirty_schema Engine Float Format Hashtbl List Option Printf Relation Rewritable Rewrite Sql String Value
