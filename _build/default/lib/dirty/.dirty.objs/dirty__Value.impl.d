lib/dirty/value.ml: Bool Buffer Float Format Hashtbl Int List Printf String
