lib/tpch/cora.ml: Array Dirty Float List Prob Random Seq
