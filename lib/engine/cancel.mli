(** Cooperative query cancellation.

    A token is polled at the executor's checkpoints — budget charges,
    operator boundaries, the parallel pool's chunk-claim loop — so a
    running query (including one spread over several domains) stops at
    the next checkpoint after the token trips.  Polling is one atomic
    load; tripping is one-shot and counted by the
    [engine.cancel.cancellations] telemetry counter. *)

type token

exception Cancelled of string
(** Raised at a checkpoint of a cancelled execution (in [Raise] budget
    mode); the payload is the {!cancel} reason. *)

val create : unit -> token

val cancel : ?reason:string -> token -> unit
(** Trip the token (idempotent; the first reason wins). *)

val cancelled : token -> bool
val reason : token -> string option

val check : token -> unit
(** @raise Cancelled if the token has tripped. *)

val with_deadline : seconds:float -> token -> (unit -> 'a) -> 'a
(** Run [f] under a wall-clock watchdog: a polling domain trips the
    token once [seconds] elapse, interrupting work — notably parallel
    joins — at the next checkpoint even when no single operator ever
    finishes.  The watchdog is always joined before returning.

    A deadline that is already past — zero, negative, or at or below
    the watchdog's 2ms tick — trips the token {e before} [f] runs
    (and spawns no watchdog), so [f] observes the cancellation at its
    first checkpoint instead of one tick later. *)
