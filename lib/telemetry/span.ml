(* Tracing spans.

   [with_ ~name f] times [f] and charges it with wall-clock and
   allocation deltas ({!Gc.counters} minor/major words — both
   inclusive of children, like the times).  [Gc.counters] reads the
   allocation pointer, so the deltas are exact even when no GC ran
   inside the span ([Gc.quick_stat]'s counters only refresh at GC
   events in native code).  Nested calls build a tree;
   when the outermost span of the current (single-threaded) stack
   completes, the finished tree is handed to every subscriber.

   With telemetry disabled ({!Control}), [with_] is [f ()] plus one
   branch. *)

type t = {
  name : string;
  mutable attrs : (string * string) list;
  start : float;                 (* Unix epoch seconds *)
  mutable elapsed : float;       (* seconds, inclusive of children *)
  mutable minor_words : float;   (* allocation deltas, inclusive *)
  mutable major_words : float;
  mutable children : t list;
}

(* innermost span first; single-threaded by design *)
let stack : t list ref = ref []

let subscribers : (t -> unit) list ref = ref []

let subscribe f = subscribers := f :: !subscribers

(* children accumulate in reverse while the tree is being built; put
   them in chronological order once, when the root completes *)
let rec normalize span =
  span.children <- List.rev span.children;
  List.iter normalize span.children

let add_attr key value =
  if Control.enabled () then
    match !stack with
    | span :: _ -> span.attrs <- (key, value) :: List.remove_assoc key span.attrs
    | [] -> ()

let with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f ()
  else begin
    let minor0, _, major0 = Gc.counters () in
    let span =
      {
        name;
        attrs;
        start = Unix.gettimeofday ();
        elapsed = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
        children = [];
      }
    in
    stack := span :: !stack;
    let finish () =
      span.elapsed <- Unix.gettimeofday () -. span.start;
      let minor1, _, major1 = Gc.counters () in
      span.minor_words <- minor1 -. minor0;
      span.major_words <- major1 -. major0;
      (match !stack with
      | _ :: rest -> stack := rest
      | [] -> ());
      match !stack with
      | parent :: _ -> parent.children <- span :: parent.children
      | [] ->
        normalize span;
        List.iter (fun f -> f span) !subscribers
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* Run [f] with telemetry enabled and also collect the root spans it
   completes, without disturbing other subscribers.  Returns the
   result and the roots in completion order. *)
let collecting f =
  let acc = ref [] in
  let collect span = acc := span :: !acc in
  let saved = !subscribers in
  subscribers := collect :: saved;
  Fun.protect
    ~finally:(fun () -> subscribers := List.filter (fun s -> s != collect) !subscribers)
    (fun () ->
      let v = Control.with_enabled f in
      (v, List.rev !acc))

(* flattened pre-order walk, with depth — handy for exporters *)
let rec fold_preorder f acc ?(depth = 0) span =
  let acc = f acc ~depth span in
  List.fold_left (fun acc child -> fold_preorder f acc ~depth:(depth + 1) child) acc
    span.children

let count span = fold_preorder (fun n ~depth:_ _ -> n + 1) 0 span
