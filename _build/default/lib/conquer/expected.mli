(** Expected answers for aggregate queries — the extension the paper
    names as future work ("we would like to extend the class of
    queries that can be rewritten to consider, for example, queries
    with grouping and aggregation", Section 6).

    For an aggregate query over a dirty database

    {v select G1..Gk, AGG(e) from R1..Rm where W group by G1..Gk v}

    the natural probabilistic semantics assigns to every group value
    the {e expectation} of its aggregate over the candidate databases
    (Dfn 4's distribution), where a group absent from a candidate's
    answer contributes 0:

      E[AGG_g] = Σ_cd  Pr(cd) · AGG({e(τ) | τ ∈ q(cd), G(τ) = g})

    For SUM and COUNT the aggregate is linear in the join tuples, so
    the expectation distributes over them:

      E[SUM_g(e)] = Σ_{join tuples τ in group g} e(τ) · Pr(τ survives)

    and [Pr(τ survives)] is exactly [R1.prob · ... · Rm.prob] because a
    join tuple picks at most one tuple from every cluster and clusters
    are independent (no self-joins).  Hence the rewriting

    {v
    select G1..Gk, SUM(e * R1.prob * ... * Rm.prob)
    from R1..Rm where W group by G1..Gk
    v}

    computes expected SUMs, and with [e = 1] expected COUNTs.  Notably
    this is correct for {e every} SPJ core without self-joins — the
    tree-shape and root-identifier conditions of Dfn 7 are not needed,
    because expectations are additive even over candidate sets that
    overlap (the over-counting of Example 7 is precisely what linearity
    of expectation tolerates).

    AVG is rewritten as the ratio of expected sum to expected count,
    i.e. [E[SUM]/E[COUNT]] — the standard first-order approximation of
    [E[AVG]]; the oracle computes the true [E[AVG]] so the
    approximation is testable.  MIN/MAX do not decompose linearly and
    are only available through the oracle. *)

type violation =
  | Self_join of string  (** a relation repeated in FROM *)
  | Unknown_dirty_table of string
  | Distinct_not_supported
  | Having_not_supported
  | Outer_join_not_supported
  | Group_select_mismatch of string
      (** a non-aggregate select item does not appear in GROUP BY (or
          vice versa) *)
  | Unsupported_aggregate of string  (** MIN/MAX or nested aggregates *)
  | Unresolved_column of string

val violation_to_string : violation -> string

val check : Dirty_schema.env -> Sql.Ast.query -> (unit, violation list) result
(** Membership test for the expected-aggregate rewriting. *)

val rewrite : Dirty_schema.env -> Sql.Ast.query -> Sql.Ast.query
(** The expected-aggregate rewriting described above.  Assumes
    {!check} passed; raises [Invalid_argument] on malformed input. *)

exception Not_supported of violation list

val answers : ?config:Engine.Planner.config -> Clean.session -> string -> Dirty.Relation.t
(** Expected aggregates via the rewriting, executed on the engine.
    @raise Not_supported when {!check} fails. *)

val answers_oracle :
  ?max_candidates:int -> Clean.session -> string -> Dirty.Relation.t
(** Exact expected aggregates by candidate enumeration: runs the
    aggregate query on every candidate database and averages.  Groups
    are keyed on the non-aggregate columns; a group absent from a
    candidate contributes 0 to its aggregates.  Supports all five
    aggregate functions. *)
