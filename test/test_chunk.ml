(* Columnar chunk executor tests: the Chunk batch representation
   itself, the float group-key corner cases (-0.0 vs 0.0, NaN), and
   the executor-level equivalences — chunked jobs=1 must be
   bit-identical to chunked jobs=4, and the chunked executor must
   agree with the row-at-a-time one exactly on everything but the last
   bits of multi-chunk float aggregate sums (so the exact comparisons
   below stick to int aggregates).

   [Chunk.default_rows] is shrunk to 7 so even the small relations
   here span several chunks (groups straddle chunk boundaries), and
   [Parallel.min_rows_per_chunk] to 2 so the parallel paths engage. *)

open Dirty

let () = Engine.Parallel.min_rows_per_chunk := 2
let () = Engine.Chunk.default_rows := 7

let v_i i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.String s

let config ?(chunked = true) jobs =
  { Engine.Planner.default_config with jobs; chunked }

(* exact relational equality under Value.compare: same schema names,
   same rows in the same order *)
let check_same_relation msg expected actual =
  Alcotest.(check (list string))
    (msg ^ ": schema")
    (Schema.names (Relation.schema expected))
    (Schema.names (Relation.schema actual));
  Alcotest.(check int)
    (msg ^ ": cardinality")
    (Relation.cardinality expected) (Relation.cardinality actual);
  Relation.rows expected
  |> Array.iteri (fun i row ->
         let row' = Relation.get actual i in
         Alcotest.(check int) (Printf.sprintf "%s: row %d arity" msg i)
           (Array.length row) (Array.length row');
         Array.iteri
           (fun j v ->
             if Value.compare v row'.(j) <> 0 then
               Alcotest.failf "%s: row %d col %d: %s <> %s" msg i j
                 (Value.to_string v)
                 (Value.to_string row'.(j)))
           row)

(* stricter: floats must agree bit for bit (Value.compare treats -0.0
   and 0.0 as equal, which would mask a sign flip) *)
let check_bitwise_relation msg expected actual =
  check_same_relation msg expected actual;
  Relation.rows expected
  |> Array.iteri (fun i row ->
         let row' = Relation.get actual i in
         Array.iteri
           (fun j v ->
             match (v, row'.(j)) with
             | Value.Float a, Value.Float b
               when Int64.bits_of_float a <> Int64.bits_of_float b ->
               Alcotest.failf "%s: row %d col %d: %h <> %h (bitwise)" msg i j a
                 b
             | _ -> ())
           row)

(* ---- the Chunk representation ---- *)

let mixed_rows =
  [|
    [| v_i 1; v_f (-0.0); v_s "ab"; Value.Bool true; Value.Date 7; v_i 9 |];
    [| v_i 2; v_f Float.nan; v_s "cd"; Value.Null; Value.Date 8; v_f 0.5 |];
    [| Value.Null; v_f 0.0; v_s "ab"; Value.Bool false; Value.Null; v_s "x" |];
    [| v_i 4; Value.Null; Value.Null; Value.Bool true; Value.Date 9; Value.Null |];
    [| v_i 5; v_f 2.5; v_s "ef"; Value.Bool false; Value.Date 7; v_i 3 |];
  |]

let bits v = Int64.bits_of_float v

let check_value msg expected actual =
  match (expected, actual) with
  | Value.Float a, Value.Float b ->
    if bits a <> bits b then
      Alcotest.failf "%s: float %h <> %h (bitwise)" msg a b
  | _ ->
    if expected <> actual then
      Alcotest.failf "%s: %s <> %s" msg
        (Value.to_string expected) (Value.to_string actual)

let test_round_trip () =
  (* every kind of column — int, float (with -0.0 and NaN), dictionary
     string, bool, date, mixed/boxed — plus nulls in each, must
     survive the pivot to columns and back bit-exactly *)
  let ch =
    Engine.Chunk.of_rows mixed_rows ~lo:0 ~len:(Array.length mixed_rows)
      ~arity:6
  in
  Alcotest.(check int) "length" 5 ch.Engine.Chunk.length;
  let back = Engine.Chunk.rows_of ch in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          check_value (Printf.sprintf "cell %d.%d" i j) v back.(i).(j))
        row)
    mixed_rows;
  (* single cells through the accessor too *)
  check_value "nan cell" (v_f Float.nan) (Engine.Chunk.row ch 1).(1);
  check_value "neg zero cell" (v_f (-0.0)) (Engine.Chunk.row ch 0).(1)

let test_gather () =
  let ch = Engine.Chunk.of_rows mixed_rows ~lo:0 ~len:5 ~arity:6 in
  let picked = Engine.Chunk.gather ch [| 4; 0; 2 |] in
  Alcotest.(check int) "gather length" 3 picked.Engine.Chunk.length;
  List.iteri
    (fun out src ->
      Array.iteri
        (fun j v ->
          check_value (Printf.sprintf "gathered %d.%d" out j)
            mixed_rows.(src).(j) v)
        (Engine.Chunk.row picked out))
    [ 4; 0; 2 ]

let test_concat_unifies () =
  (* chunks whose column kinds disagree (ints vs strings) must unify
     when concatenated, falling back to boxed cells *)
  let a = Engine.Chunk.of_rows [| [| v_i 1 |]; [| v_i 2 |] |] ~lo:0 ~len:2 ~arity:1 in
  let b = Engine.Chunk.of_rows [| [| v_s "x" |]; [| Value.Null |] |] ~lo:0 ~len:2 ~arity:1 in
  let all = Engine.Chunk.concat ~arity:1 [| a; b |] in
  Alcotest.(check int) "concat length" 4 all.Engine.Chunk.length;
  List.iteri
    (fun i expected -> check_value (Printf.sprintf "concat %d" i) expected
        (Engine.Chunk.row all i).(0))
    [ v_i 1; v_i 2; v_s "x"; Value.Null ]

let test_column_ty () =
  let ch =
    Engine.Chunk.of_rows
      [| [| Value.Null; Value.Null |]; [| Value.Null; v_f 1.0 |] |]
      ~lo:0 ~len:2 ~arity:2
  in
  Alcotest.(check bool) "all-null column has no type" true
    (Engine.Chunk.column_ty ch 0 = None);
  Alcotest.(check bool) "first non-null wins" true
    (Engine.Chunk.column_ty ch 1 = Some Value.TFloat)

(* ---- float group keys: -0.0 vs 0.0 and NaN ---- *)

(* [Value.compare] says -0.0 = 0.0 and NaN = NaN, so every executor
   configuration must place such keys in one group; a hash that
   distinguishes the bit patterns would split them only on some
   paths.  Regression for the group-key hashing satellite. *)

let float_key_db () =
  let engine = Engine.Database.create () in
  let keys =
    [ -0.0; 0.0; Float.nan; 1.5; Float.nan; -0.0; 0.0; 1.5; 2.5; -0.0 ]
  in
  let rel =
    Relation.create
      (Schema.make [ ("k", Value.TFloat); ("v", Value.TInt) ])
      (List.mapi (fun i k -> [| v_f k; v_i i |]) keys)
  in
  Engine.Database.add_relation engine ~name:"t" rel;
  engine

let test_float_group_keys () =
  let engine = float_key_db () in
  let sql = "select k, count(*), sum(v) from t group by k" in
  let row_serial =
    Engine.Database.query ~config:(config ~chunked:false 1) engine sql
  in
  let chunked_serial = Engine.Database.query ~config:(config 1) engine sql in
  let chunked_parallel = Engine.Database.query ~config:(config 4) engine sql in
  (* distinct keys under Value.compare: {-0.0, 0.0}, {NaN}, 1.5, 2.5 *)
  Alcotest.(check int) "four groups" 4 (Relation.cardinality row_serial);
  check_same_relation "chunked serial = row serial" row_serial chunked_serial;
  check_bitwise_relation "chunked jobs=4 = jobs=1" chunked_serial
    chunked_parallel

let test_float_join_keys () =
  let engine = Engine.Database.create () in
  let rel name keys =
    Relation.create
      (Schema.make [ ("k", Value.TFloat); (name, Value.TInt) ])
      (List.mapi (fun i k -> [| v_f k; v_i i |]) keys)
  in
  Engine.Database.add_relation engine ~name:"l"
    (rel "a" [ -0.0; 0.0; Float.nan; 1.0; 2.0 ]);
  Engine.Database.add_relation engine ~name:"r"
    (rel "b" [ 0.0; Float.nan; 2.0; 3.0 ]);
  let sql = "select l.a, r.b from l, r where l.k = r.k" in
  let row_serial =
    Engine.Database.query ~config:(config ~chunked:false 1) engine sql
  in
  let chunked_serial = Engine.Database.query ~config:(config 1) engine sql in
  let chunked_parallel = Engine.Database.query ~config:(config 4) engine sql in
  (* -0.0 and 0.0 both meet r's 0.0; NaN meets NaN; 2.0 meets 2.0 *)
  Alcotest.(check int) "matches" 4 (Relation.cardinality row_serial);
  check_same_relation "chunked serial = row serial" row_serial chunked_serial;
  check_bitwise_relation "chunked jobs=4 = jobs=1" chunked_serial
    chunked_parallel

(* ---- executor equivalences on fixed shapes ---- *)

let test_empty_and_all_null () =
  let engine = Engine.Database.create () in
  Engine.Database.add_relation engine ~name:"empty"
    (Relation.create
       (Schema.make [ ("k", Value.TInt); ("v", Value.TInt) ])
       []);
  Engine.Database.add_relation engine ~name:"nulls"
    (Relation.create
       (Schema.make [ ("k", Value.TInt); ("v", Value.TInt) ])
       (List.init 20 (fun i -> [| v_i (i mod 3); Value.Null |])));
  List.iter
    (fun sql ->
      let row = Engine.Database.query ~config:(config ~chunked:false 1) engine sql in
      let c1 = Engine.Database.query ~config:(config 1) engine sql in
      let c4 = Engine.Database.query ~config:(config 4) engine sql in
      check_same_relation (sql ^ ": chunked = row") row c1;
      check_same_relation (sql ^ ": jobs=4 = jobs=1") c1 c4)
    [
      "select v from empty where v > 0";
      "select k, v from empty";
      "select k, count(*), sum(v) from empty group by k";
      "select v from nulls where v > 0";
      "select k, v + 1 from nulls";
      "select k, count(v), sum(v), min(v), max(v) from nulls group by k";
      "select a.v from nulls a, nulls b where a.v = b.v";
    ]

let test_truncate_prefix_chunked () =
  let engine = float_key_db () in
  let q = Sql.Parser.parse_query "select k, v * 2 from t where v >= 0" in
  let full = Engine.Database.query_ast ~config:(config 1) engine q in
  let check_at jobs =
    let cfg = { (config jobs) with max_rows = Some 13 } in
    let rel, { Engine.Database.truncated; cancelled = _ } =
      Engine.Database.query_ast_within ~config:cfg engine q
    in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d truncated" jobs)
      true truncated;
    let prefix =
      Relation.of_array (Relation.schema full)
        (Array.sub (Relation.rows full) 0 (Relation.cardinality rel))
    in
    check_same_relation (Printf.sprintf "jobs=%d prefix" jobs) prefix rel;
    rel
  in
  let serial = check_at 1 in
  let parallel = check_at 4 in
  check_same_relation "truncated prefixes agree" serial parallel

(* ---- randomized equivalence (QCheck) ---- *)

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* floats lean on the corner cases the kernels special-case *)
let float_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.float_range (-100.0) 100.0;
      QCheck.Gen.oneofl [ -0.0; 0.0; Float.nan; Float.infinity ];
    ]

(* numeric-or-null: these rows flow through arithmetic and SUM, where
   a string would (correctly, in both executors) raise *)
let value_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map v_i (QCheck.Gen.int_range (-50) 50);
      QCheck.Gen.map v_f float_gen;
      QCheck.Gen.return Value.Null;
    ]

(* group sizes well past default_rows = 7, so groups straddle chunk
   boundaries; n ranges down to 0 for the empty-relation edge *)
let grouped_relation_gen =
  let* n = QCheck.Gen.int_range 0 120 in
  let* all_null = QCheck.Gen.bool in
  let* rows =
    QCheck.Gen.list_size (QCheck.Gen.return n)
      (let* g = QCheck.Gen.int_range 0 4 in
       let* v = if all_null then QCheck.Gen.return Value.Null else value_gen in
       QCheck.Gen.return [| v_i g; v |])
  in
  QCheck.Gen.return
    (Relation.create (Schema.make [ ("g", Value.TInt); ("v", Value.TInt) ]) rows)

let with_relation rel f =
  let engine = Engine.Database.create () in
  Engine.Database.add_relation engine ~name:"t" rel;
  f engine

let bitwise_jobs1_jobs4 engine sql =
  let serial = Engine.Database.query ~config:(config 1) engine sql in
  let parallel = Engine.Database.query ~config:(config 4) engine sql in
  check_bitwise_relation sql serial parallel

let prop_chunked_jobs_equivalence =
  QCheck.Test.make ~count:60
    ~name:"chunked filter/project/aggregate bit-identical jobs=1 vs jobs=4"
    (QCheck.make grouped_relation_gen)
    (fun rel ->
      with_relation rel (fun engine ->
          bitwise_jobs1_jobs4 engine "select v from t where v > 1";
          bitwise_jobs1_jobs4 engine "select g, v + 1, v * 2 from t";
          bitwise_jobs1_jobs4 engine
            "select g, count(*), count(v), sum(v), min(v), max(v) from t \
             group by g";
          bitwise_jobs1_jobs4 engine
            "select g, count(v) from t where g > 1 group by g \
             having count(*) > 1";
          true))

let join_pair_gen =
  let* nl = QCheck.Gen.int_range 0 100 in
  let* nr = QCheck.Gen.int_range 0 100 in
  let row_gen tag =
    let* k =
      QCheck.Gen.oneof
        [
          QCheck.Gen.map v_i (QCheck.Gen.int_range 0 10);
          QCheck.Gen.map v_f (QCheck.Gen.oneofl [ -0.0; 0.0; Float.nan; 3.0 ]);
          QCheck.Gen.return Value.Null;
        ]
    in
    let* v = QCheck.Gen.int_range 0 1000 in
    QCheck.Gen.return [| k; v_s (Printf.sprintf "%s%d" tag v) |]
  in
  let* lrows = QCheck.Gen.list_size (QCheck.Gen.return nl) (row_gen "l") in
  let* rrows = QCheck.Gen.list_size (QCheck.Gen.return nr) (row_gen "r") in
  let schema tag = Schema.make [ ("k", Value.TInt); (tag, Value.TString) ] in
  QCheck.Gen.return
    (Relation.create (schema "a") lrows, Relation.create (schema "b") rrows)

let prop_chunked_join_equivalence =
  QCheck.Test.make ~count:60
    ~name:"chunked hash join bit-identical jobs=1 vs jobs=4, equal to row"
    (QCheck.make join_pair_gen)
    (fun (left, right) ->
      let engine = Engine.Database.create () in
      Engine.Database.add_relation engine ~name:"l" left;
      Engine.Database.add_relation engine ~name:"r" right;
      let sql = "select l.a, r.b from l, r where l.k = r.k" in
      let row = Engine.Database.query ~config:(config ~chunked:false 1) engine sql in
      let c1 = Engine.Database.query ~config:(config 1) engine sql in
      let c4 = Engine.Database.query ~config:(config 4) engine sql in
      check_same_relation "chunked = row" row c1;
      check_bitwise_relation "jobs=4 = jobs=1" c1 c4;
      true)

(* int-only aggregates are exact, so chunked and row executors must
   agree to the last bit even across morsel reassociation *)
let int_relation_gen =
  let* n = QCheck.Gen.int_range 0 120 in
  let* rows =
    QCheck.Gen.list_size (QCheck.Gen.return n)
      (let* g = QCheck.Gen.int_range 0 4 in
       let* v =
         QCheck.Gen.oneof
           [
             QCheck.Gen.map v_i (QCheck.Gen.int_range (-1000) 1000);
             QCheck.Gen.return Value.Null;
           ]
       in
       QCheck.Gen.return [| v_i g; v |])
  in
  QCheck.Gen.return
    (Relation.create (Schema.make [ ("g", Value.TInt); ("v", Value.TInt) ]) rows)

let prop_chunked_equals_row_int_aggregates =
  QCheck.Test.make ~count:60
    ~name:"chunked aggregate equals row executor exactly on int columns"
    (QCheck.make int_relation_gen)
    (fun rel ->
      with_relation rel (fun engine ->
          let sql =
            "select g, count(*), sum(v), min(v), max(v) from t group by g"
          in
          let row =
            Engine.Database.query ~config:(config ~chunked:false 1) engine sql
          in
          let c4 = Engine.Database.query ~config:(config 4) engine sql in
          check_same_relation "chunked jobs=4 = row serial" row c4;
          true))

(* budgeted Truncate prefixes stay deterministic under the chunked
   executor at any jobs value *)
let prop_truncate_prefix =
  QCheck.Test.make ~count:40
    ~name:"chunked Truncate prefixes agree between jobs=1 and jobs=4"
    (QCheck.make grouped_relation_gen)
    (fun rel ->
      with_relation rel (fun engine ->
          let q = Sql.Parser.parse_query "select g, v from t where g >= 0" in
          let at jobs =
            let cfg = { (config jobs) with max_rows = Some 17 } in
            fst (Engine.Database.query_ast_within ~config:cfg engine q)
          in
          check_same_relation "prefixes" (at 1) (at 4);
          true))

let () =
  Alcotest.run "chunk"
    [
      ( "representation",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "gather" `Quick test_gather;
          Alcotest.test_case "concat unifies kinds" `Quick test_concat_unifies;
          Alcotest.test_case "column type inference" `Quick test_column_ty;
        ] );
      ( "float keys",
        [
          Alcotest.test_case "group keys -0.0/0.0/NaN" `Quick
            test_float_group_keys;
          Alcotest.test_case "join keys -0.0/0.0/NaN" `Quick
            test_float_join_keys;
        ] );
      ( "executor",
        [
          Alcotest.test_case "empty and all-null inputs" `Quick
            test_empty_and_all_null;
          Alcotest.test_case "truncate prefix" `Quick
            test_truncate_prefix_chunked;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_chunked_jobs_equivalence;
            prop_chunked_join_equivalence;
            prop_chunked_equals_row_int_aggregates;
            prop_truncate_prefix;
          ] );
    ]
