(** Retry with capped exponential backoff.

    [with_retry f] runs [f], retrying on failures the classifier deems
    transient, sleeping [base_backoff * 2^i] (capped at [max_backoff])
    between attempts.  Permanent failures propagate immediately; when
    every attempt fails transiently, {!Gave_up} wraps the last error
    (a single-attempt policy re-raises the error itself).

    The sleep function and the classifier are injectable so tests can
    verify attempt counts and the exact backoff sequence without
    sleeping. *)

type policy = {
  attempts : int;  (** total tries, including the first (min 1) *)
  base_backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** backoff ceiling, seconds *)
}

val default_policy : policy
(** 3 attempts, 50ms base, 2s cap. *)

val set_policy : policy -> unit
(** Set the process-wide policy used when [with_retry] is called
    without an explicit one (the CLI's [--retries]/[--io-backoff-ms]
    flags). *)

val policy : unit -> policy

exception Gave_up of { attempts : int; last : exn }

val backoff : policy -> int -> float
(** [backoff p i] is the sleep after failed attempt [i] (0-based). *)

val with_retry :
  ?policy:policy ->
  ?classify:(exn -> [ `Transient | `Permanent ]) ->
  ?sleep:(float -> unit) ->
  (unit -> 'a) ->
  'a
(** The default classifier treats {!Io.Io_error} with
    [transient = true], [Sys_error], and interrupted/EIO Unix errors
    as transient; everything else — including {!Io.Crashed} and
    ENOSPC — as permanent. *)
