type query = { qid : int; sql : string; description : string }

let q1 =
  {
    qid = 1;
    description = "pricing summary report (aggregates removed)";
    sql =
      "select l_id, l_returnflag, l_linestatus, l_quantity, l_extendedprice \
       from lineitem \
       where l_shipdate <= date '1998-09-02' \
       order by l_returnflag, l_linestatus";
  }

let q2 =
  {
    qid = 2;
    description = "minimum cost supplier (subquery removed)";
    sql =
      "select ps_id, s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, \
       s_phone \
       from part p, supplier s, partsupp ps, nation n, region r \
       where p_partkey = ps_partkey and s_suppkey = ps_suppkey \
       and p_size <= 15 and p_type like '%BRASS' \
       and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
       and r_name = 'EUROPE' \
       order by s_acctbal desc, n_name, s_name, p_partkey";
  }

let q3_body =
  "select l_id, l_orderkey, l_extendedprice * (1 - l_discount) as revenue, \
   o_orderdate, o_shippriority \
   from customer, orders, lineitem \
   where c_mktsegment = 'BUILDING' and c_custkey = o_custkey \
   and l_orderkey = o_orderkey \
   and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15'"

let q3 =
  {
    qid = 3;
    description = "shipping priority (three-way join, order by revenue)";
    sql = q3_body ^ " order by revenue desc, o_orderdate";
  }

let q4 =
  {
    qid = 4;
    description = "order priority checking (exists subquery flattened)";
    sql =
      "select l_id, o_orderkey, o_orderpriority \
       from orders, lineitem \
       where l_orderkey = o_orderkey and l_commitdate < l_receiptdate \
       and o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01' \
       order by o_orderpriority";
  }

let q6 =
  {
    qid = 6;
    description = "forecasting revenue change (aggregates removed)";
    sql =
      "select l_id, l_extendedprice, l_discount \
       from lineitem \
       where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
       and l_discount between 0.05 and 0.07 and l_quantity < 24";
  }

let q9 =
  {
    qid = 9;
    description = "product type profit (six-way join, high selectivity)";
    sql =
      "select l_id, n_name, o_orderdate, \
       l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount \
       from part p, supplier s, lineitem l, partsupp ps, orders o, nation n \
       where s_suppkey = l_suppkey and l_psid = ps_id and p_partkey = l_partkey \
       and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
       and p_name like '%green%' \
       order by n_name, o_orderdate desc";
  }

let q10 =
  {
    qid = 10;
    description = "returned item reporting (aggregates removed)";
    sql =
      "select l_id, c_custkey, c_name, l_extendedprice, l_discount, c_acctbal, \
       n_name, c_address, c_phone \
       from customer c, orders o, lineitem l, nation n \
       where c_custkey = o_custkey and l_orderkey = o_orderkey \
       and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' \
       and l_returnflag = 'R' and c_nationkey = n_nationkey \
       order by c_acctbal desc";
  }

let q11 =
  {
    qid = 11;
    description = "important stock identification (aggregates removed)";
    sql =
      "select ps_id, ps_partkey, ps_supplycost, ps_availqty \
       from partsupp ps, supplier s, nation n \
       where ps_suppkey = s_suppkey and s_nationkey = n_nationkey \
       and n_name = 'GERMANY' \
       order by ps_supplycost desc";
  }

let q12 =
  {
    qid = 12;
    description = "shipping modes and order priority (aggregates removed)";
    sql =
      "select l_id, l_shipmode, o_orderpriority \
       from orders, lineitem \
       where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP') \
       and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
       and l_receiptdate >= date '1994-01-01' \
       and l_receiptdate < date '1995-01-01' \
       order by l_shipmode";
  }

let q14 =
  {
    qid = 14;
    description = "promotion effect (aggregates removed)";
    sql =
      "select l_id, p_type, l_extendedprice, l_discount \
       from lineitem, part \
       where l_partkey = p_partkey \
       and l_shipdate >= date '1995-09-01' and l_shipdate < date '1995-10-01'";
  }

let q17 =
  {
    qid = 17;
    description = "small-quantity-order revenue (avg subquery removed)";
    sql =
      "select l_id, l_quantity, l_extendedprice \
       from lineitem, part \
       where p_partkey = l_partkey and p_brand like 'Brand#2%' \
       and p_container like 'MED%' and l_quantity < 10";
  }

let q18 =
  {
    qid = 18;
    description = "large volume customer (in-subquery removed)";
    sql =
      "select l_id, c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
       l_quantity \
       from customer, orders, lineitem \
       where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and l_quantity > 45 \
       order by o_totalprice desc, o_orderdate";
  }

let q20 =
  {
    qid = 20;
    description = "potential part promotion (subqueries flattened)";
    sql =
      "select ps_id, s_name, s_address \
       from supplier s, nation n, partsupp ps, part p \
       where s_nationkey = n_nationkey and n_name = 'CANADA' \
       and ps_suppkey = s_suppkey and ps_partkey = p_partkey \
       and p_name like 'forest%' \
       order by s_name";
  }

let all = [ q1; q2; q3; q4; q6; q9; q10; q11; q12; q14; q17; q18; q20 ]

let find qid =
  match List.find_opt (fun q -> q.qid = qid) all with
  | Some q -> q
  | None -> raise Not_found

let q3_no_order_by =
  { q3 with description = "query 3 without ORDER BY (Figure 9)"; sql = q3_body }

let q18_original_form =
  {
    qid = 18;
    description = "large volume customer with its TPC-H subquery restored";
    sql =
      "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
       from customer, orders, lineitem \
       where o_orderkey in \
       (select l_orderkey from lineitem group by l_orderkey \
        having sum(l_quantity) > 150) \
       and c_custkey = o_custkey and o_orderkey = l_orderkey \
       order by o_totalprice desc, o_orderdate";
  }
