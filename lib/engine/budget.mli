(** Execution budgets: bounds on the work a query may perform.

    A budget caps the total number of rows the plan's operators
    produce (a proxy for work done — intermediate results count, not
    just the final answer) and the elapsed wall-clock time.  The
    executor charges the budget as rows are materialized, including
    {e inside} join and cross-product loops, so a query whose
    intermediate result explodes is stopped mid-operator rather than
    after the damage is done.

    Two modes of exceeding:

    - [Raise] (the default): raise {!Exceeded} with the work done so
      far — the structured failure callers of
      {!Database.query_ast} observe.
    - [Truncate]: stop producing rows but let the plan finish over the
      partial intermediate results, and record that truncation
      happened.  Used by the degrading query entry points
      ([Database.query_ast_within], [Conquer.Clean.top_answers_within])
      to return partial answers with a truncation flag.

    A budget is domain-safe: its accounting is mutex-guarded, so
    charges from parallel operator partitions are serialized and the
    admitted total never exceeds the limit.  (The executor additionally
    runs per-row-charged operators serially when a budget is in force,
    keeping [Truncate] prefixes identical to a serial run.) *)

type limits = {
  max_rows : int option;  (** total rows produced across all operators *)
  max_elapsed : float option;  (** wall-clock seconds *)
}

val no_limits : limits

type mode = Raise | Truncate

exception
  Exceeded of {
    produced : int;  (** rows produced when the budget ran out *)
    elapsed : float;  (** seconds since execution started *)
    limits : limits;  (** the limits that were in force *)
  }

val exceeded_message : produced:int -> elapsed:float -> limits -> string
(** Human-readable rendering used by [Printexc] and the CLI. *)

type t

val create : ?mode:mode -> limits -> t
(** A fresh budget; the clock starts now. *)

val admit : t -> int -> int
(** [admit t n] charges [n] more rows and returns how many of them the
    budget admits: [n] while within limits; fewer (possibly 0) in
    [Truncate] mode once the row budget runs out.  The wall clock is
    consulted at most once every few hundred admitted rows, keeping
    the per-row cost negligible.
    @raise Exceeded in [Raise] mode when a limit is crossed. *)

val check_time : t -> unit
(** Force a clock check (used at operator boundaries, where crossing
    the time limit should surface promptly).
    @raise Exceeded in [Raise] mode. *)

val exhausted : t -> bool
(** True once the budget stopped admitting rows ([Truncate] mode). *)

val truncated : t -> bool
(** Alias of {!exhausted}: the result reflects a truncated
    execution. *)

val produced : t -> int
val elapsed : t -> float
