(** Descriptions of the dirty relations a query ranges over, as needed
    by the join-graph construction and the rewriting. *)

type table_info = {
  id_attr : string;  (** identifier (cluster id) attribute *)
  prob_attr : string;  (** probability attribute *)
}

type env = {
  schema_of : string -> Dirty.Schema.t option;
      (** bare schema of the dirty relation *)
  info_of : string -> table_info option;
      (** identifier/probability attributes of the dirty relation *)
}

val of_dirty_db : Dirty.Dirty_db.t -> env
