lib/engine/expr.mli: Dirty Sql
