lib/tpch/schema.mli: Dirty
