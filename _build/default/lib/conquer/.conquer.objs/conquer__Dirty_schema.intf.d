lib/conquer/dirty_schema.mli: Dirty
