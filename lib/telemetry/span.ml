(* Tracing spans.

   [with_ ~name f] times [f] and charges it with wall-clock and
   allocation deltas ({!Gc.counters} minor/major words — both
   inclusive of children, like the times).  [Gc.counters] reads the
   allocation pointer, so the deltas are exact even when no GC ran
   inside the span ([Gc.quick_stat]'s counters only refresh at GC
   events in native code).  Nested calls build a tree; when the
   outermost span of the current stack completes, the finished tree
   is handed to every subscriber.

   Domain-safety: the span stack is domain-local ([Domain.DLS]), so
   each domain builds its own tree and a worker domain spawned by
   [Engine.Parallel] can never corrupt the coordinator's stack.  A
   parallel region confines worker spans with {!detached} and merges
   the finished trees back into the coordinator's current span with
   {!attach}, in a deterministic (partition-index) order.  The
   subscriber list is guarded by a mutex; notification itself reads
   an immutable list snapshot.

   With telemetry disabled ({!Control}), [with_] is [f ()] plus one
   branch. *)

type t = {
  name : string;
  mutable attrs : (string * string) list;
  mutable start : float;         (* Unix epoch seconds *)
  mutable elapsed : float;       (* seconds, inclusive of children *)
  mutable minor_words : float;   (* allocation deltas, inclusive *)
  mutable major_words : float;
  mutable children : t list;
}

(* innermost span first; one stack per domain *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

(* where this domain's completed roots go: [None] means the global
   subscribers; {!detached} swaps in a capture function *)
let sink_key : (t -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let subscribers : (t -> unit) list ref = ref []
let subscribers_lock = Mutex.create ()

let subscribe f =
  Mutex.lock subscribers_lock;
  subscribers := f :: !subscribers;
  Mutex.unlock subscribers_lock

(* children accumulate in reverse while the tree is being built; put
   them in chronological order once, when the root completes *)
let rec normalize span =
  span.children <- List.rev span.children;
  List.iter normalize span.children

let add_attr key value =
  if Control.enabled () then
    match !(stack ()) with
    | span :: _ -> span.attrs <- (key, value) :: List.remove_assoc key span.attrs
    | [] -> ()

let complete_root span =
  normalize span;
  match !(Domain.DLS.get sink_key) with
  | Some capture -> capture span
  | None ->
    let subs =
      Mutex.lock subscribers_lock;
      let subs = !subscribers in
      Mutex.unlock subscribers_lock;
      subs
    in
    List.iter (fun f -> f span) subs

let with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f ()
  else begin
    let minor0, _, major0 = Gc.counters () in
    let span =
      {
        name;
        attrs;
        start = Unix.gettimeofday ();
        elapsed = 0.0;
        minor_words = 0.0;
        major_words = 0.0;
        children = [];
      }
    in
    let st = stack () in
    st := span :: !st;
    let finish () =
      span.elapsed <- Unix.gettimeofday () -. span.start;
      let minor1, _, major1 = Gc.counters () in
      span.minor_words <- minor1 -. minor0;
      span.major_words <- major1 -. major0;
      (match !st with
      | _ :: rest -> st := rest
      | [] -> ());
      match !st with
      | parent :: _ -> parent.children <- span :: parent.children
      | [] -> complete_root span
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* A hand-built span for time that was spent before any instrumented
   code could run (admission-queue wait, for one): the interval is
   measured by the caller, there are no allocation deltas, and the
   span is already "finished" — pair it with {!attach} to graft it
   into a live tree. *)
let manual ?(attrs = []) ~name ~start ~elapsed () =
  {
    name;
    attrs;
    start;
    elapsed;
    minor_words = 0.0;
    major_words = 0.0;
    children = [];
  }

(* ---- parallel regions ---- *)

(* Run [f] under a fresh root span on the current domain, capturing
   the finished tree instead of notifying subscribers.  Used by
   [Engine.Parallel] to confine a worker's spans: the coordinator
   later grafts the returned tree with {!attach}.  The previous stack
   and sink are restored on exit, so nesting is safe. *)
let detached ?attrs ~name f =
  if not (Control.enabled ()) then (f (), None)
  else begin
    let st = stack () and sink = Domain.DLS.get sink_key in
    let saved_stack = !st and saved_sink = !sink in
    let captured = ref None in
    st := [];
    sink := Some (fun span -> captured := Some span);
    Fun.protect
      ~finally:(fun () ->
        st := saved_stack;
        sink := saved_sink)
      (fun () ->
        let v = with_ ?attrs ~name f in
        (v, !captured))
  end

(* Graft an already-finished (normalized) span tree as a child of the
   current span; a no-op outside any span.  The child keeps its own
   timings and allocation deltas. *)
let attach span =
  if Control.enabled () then
    match !(stack ()) with
    | parent :: _ -> parent.children <- span :: parent.children
    | [] -> complete_root span

(* Run [f] with telemetry enabled and also collect the root spans it
   completes, without disturbing other subscribers.  Returns the
   result and the roots in completion order. *)
let collecting f =
  let acc = ref [] in
  let acc_lock = Mutex.create () in
  let collect span =
    Mutex.lock acc_lock;
    acc := span :: !acc;
    Mutex.unlock acc_lock
  in
  Mutex.lock subscribers_lock;
  subscribers := collect :: !subscribers;
  Mutex.unlock subscribers_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock subscribers_lock;
      subscribers := List.filter (fun s -> s != collect) !subscribers;
      Mutex.unlock subscribers_lock)
    (fun () ->
      let v = Control.with_enabled f in
      (v, List.rev !acc))

(* flattened pre-order walk, with depth — handy for exporters *)
let rec fold_preorder f acc ?(depth = 0) span =
  let acc = f acc ~depth span in
  List.fold_left (fun acc child -> fold_preorder f acc ~depth:(depth + 1) child) acc
    span.children
let count span = fold_preorder (fun n ~depth:_ _ -> n + 1) 0 span

(* sum of leaf-span elapsed time — what fraction of a root's
   wall-clock its finest-grained spans account for *)
let leaf_elapsed span =
  fold_preorder
    (fun acc ~depth:_ s -> if s.children = [] then acc +. s.elapsed else acc)
    0.0 span

(* Nested spans are inclusive: an operator's elapsed contains its
   inputs', so the tree says what each subtree cost but not what each
   node itself cost.  [annotate_self] adds the flamegraph-style
   exclusive view: every interior span whose elapsed exceeds the sum
   of its children's gains a final ["(self)"] leaf holding the
   difference.  After annotation the leaves partition the attributed
   wall-clock, so [leaf_elapsed root /. root.elapsed] reads as trace
   coverage — the rest is glue between sibling spans. *)
let rec annotate_self span =
  match span.children with
  | [] -> ()
  | children ->
    List.iter annotate_self children;
    let under = List.fold_left (fun a c -> a +. c.elapsed) 0.0 children in
    let self = span.elapsed -. under in
    if self > 0.0 then
      span.children <-
        span.children
        @ [ manual ~name:"(self)" ~start:span.start ~elapsed:self () ]
