lib/engine/expr.ml: Array Dirty Hashtbl List Printf Relation Schema Sql String Value
