lib/conquer/expected.mli: Clean Dirty Dirty_schema Engine Sql
