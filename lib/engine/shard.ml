open Dirty
module Ast = Sql.Ast

(* Cluster-sharded scatter/gather execution.

   The dirty store is hash-partitioned along cluster boundaries
   ([Dirty_db.partition]); a query is rewritten into one plan fragment
   that every shard runs against [its fragment of ONE partition table
   ∪ the global copies of every other table] (a broadcast join), and
   the partial results are gathered and finished on the coordinator.

   Correctness hinges on the partition table appearing exactly once in
   the FROM list: every joined result row then contains exactly one
   partition-table row, and since the fragments partition that table,
   each result row is produced by exactly one shard.  SPJ outputs
   therefore concatenate, and aggregate groups merge additively (SUM /
   COUNT) or by order (MIN / MAX) without double counting.

   Determinism: partials are gathered in shard-index order and groups
   merged in first-occurrence order of that scan, so the gathered
   relation is a deterministic function of the data and the shard
   count.  Row order may differ from the unsharded run (groups first
   occur on different shards), but the answer bags are identical —
   and for SUM the per-group float additions happen in a fixed
   per-shard-then-shard-order association, so any fixed shard count
   yields bit-reproducible sums. *)

type session = {
  base : Database.t;
  nshards : int;
  fragments : Database.t array;
      (* fragments.(s) holds shard [s]'s fragment of EVERY dirty
         table, indexed and analyzed like the base catalog *)
}

let m_sharded =
  Telemetry.Metrics.counter "engine.shard.queries"
    ~help:"queries executed scatter/gather across shards"

let m_fallback =
  Telemetry.Metrics.counter "engine.shard.fallbacks"
    ~help:"queries outside the shardable class, run unsharded"

let create ?(index_identifiers = true) ~base ~shards dirty =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard.create: shards must be >= 1, got %d" shards);
  let parts = Dirty_db.partition dirty ~shards in
  let fragments =
    Array.map
      (fun part ->
        let db = Database.create () in
        List.iter
          (fun (t : Dirty_db.table) ->
            Database.add_relation db ~name:t.name t.relation;
            if index_identifiers then begin
              Database.create_index db ~table:t.name ~attr:t.id_attr;
              Database.analyze db t.name
            end)
          (Dirty_db.tables part);
        db)
      parts
  in
  { base; nshards = shards; fragments }

let shards t = t.nshards
let fragment_db t s = t.fragments.(s)

(* ---- plan fragments ---- *)

type fragment = { frag_table : string; frag_query : Ast.query }

let fragment_to_string { frag_table; frag_query } =
  frag_table ^ "\n" ^ Sql.Pretty.query_to_string frag_query

let fragment_of_string s =
  match String.index_opt s '\n' with
  | None -> invalid_arg "Shard.fragment_of_string: missing partition-table line"
  | Some i ->
    {
      frag_table = String.sub s 0 i;
      frag_query =
        Sql.Parser.parse_query (String.sub s (i + 1) (String.length s - i - 1));
    }

type kind =
  | Group of { num_keys : int; agg_funs : Ast.agg_fun array; finish : Ast.query }
      (* partials are GROUP BY results keyed on the first [num_keys]
         columns; merge additively then run [finish] over [__merged] *)
  | Select of { finish : Ast.query }
      (* partials are SPJ outputs; concatenate in shard order then run
         [finish] over [__merged] *)

type plan = { frag : fragment; kind : kind }

let plan_fragment p = p.frag
let partition_table p = p.frag.frag_table

(* ---- partial-result codec ----

   One CSV-framed line per row, each cell self-describing its type so
   the decode is exact: [Value.to_string] floats are display-rounded
   (%g), so partials instead ship floats in hex (%h), which
   round-trips every double including nan and the infinities.  The
   first line carries the column names; column types are re-inferred
   from the decoded values on read. *)

let encode_value (v : Value.t) =
  match v with
  | Null -> "n:"
  | Bool b -> "b:" ^ string_of_bool b
  | Int i -> "i:" ^ string_of_int i
  | Float f -> Printf.sprintf "f:%h" f
  | String s -> "s:" ^ s
  | Date d -> "d:" ^ string_of_int d

let decode_value s : Value.t =
  let fail () =
    invalid_arg (Printf.sprintf "Shard.partial_of_string: bad cell %S" s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.sub s 0 i with
    | "n" -> Null
    | "b" -> ( try Bool (bool_of_string rest) with _ -> fail ())
    | "i" -> ( try Int (int_of_string rest) with _ -> fail ())
    | "f" -> ( try Float (float_of_string rest) with _ -> fail ())
    | "s" -> String rest
    | "d" -> ( try Date (int_of_string rest) with _ -> fail ())
    | _ -> fail ())

let partial_to_string rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Csv.render_line (Schema.names (Relation.schema rel)));
  Relation.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Csv.render_line (List.map encode_value (Array.to_list row))))
    rel;
  Buffer.contents buf

let partial_of_string s =
  match Csv.parse_rows s with
  | [] -> invalid_arg "Shard.partial_of_string: missing header line"
  | names :: data ->
    let rows = List.map (fun cells -> Array.of_list (List.map decode_value cells)) data in
    let arity = List.length names in
    List.iter
      (fun r ->
        if Array.length r <> arity then
          invalid_arg "Shard.partial_of_string: row arity differs from header")
      rows;
    Relation.create (Exec.infer_schema names rows) rows

(* ---- gather: merging partial results ---- *)

let add_values (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Null, x | x, Null -> x
  | Int x, Int y -> Int (x + y)
  | _ -> (
    match (Value.to_float a, Value.to_float b) with
    | Some x, Some y -> Float (x +. y)
    | _ -> invalid_arg "Shard.merge_partials: non-numeric aggregate partial")

let merge_cell (f : Ast.agg_fun) a b =
  match f with
  | Count | Sum -> add_values a b
  | Min ->
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare a b <= 0 then a
    else b
  | Max ->
    if Value.is_null a then b
    else if Value.is_null b then a
    else if Value.compare a b >= 0 then a
    else b
  | Avg -> invalid_arg "Shard.merge_partials: AVG partials are not mergeable"

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 k
end

module Ktbl = Hashtbl.Make (Key)

let output_names partials fallback =
  match partials with
  | p :: _ -> Schema.names (Relation.schema p)
  | [] -> fallback

let merge_partials ~num_keys ~aggs partials =
  let naggs = Array.length aggs in
  let arity = num_keys + naggs in
  let tbl = Ktbl.create 64 in
  let order = ref [] in
  List.iter
    (fun part ->
      Relation.iter
        (fun row ->
          if Array.length row <> arity then
            invalid_arg
              (Printf.sprintf
                 "Shard.merge_partials: row arity %d, expected %d keys + %d aggregates"
                 (Array.length row) num_keys naggs);
          let key = Array.sub row 0 num_keys in
          match Ktbl.find_opt tbl key with
          | Some states ->
            for j = 0 to naggs - 1 do
              states.(j) <- merge_cell aggs.(j) states.(j) row.(num_keys + j)
            done
          | None ->
            Ktbl.add tbl key (Array.sub row num_keys naggs);
            order := key :: !order)
        part)
    partials;
  let rows =
    List.rev_map (fun key -> Array.append key (Ktbl.find tbl key)) !order
  in
  let fallback =
    List.init num_keys (Printf.sprintf "__g%d")
    @ List.init naggs (Printf.sprintf "__a%d")
  in
  Relation.create (Exec.infer_schema (output_names partials fallback) rows) rows

let concat_partials partials =
  let rows =
    List.concat_map (fun p -> Array.to_list (Relation.rows p)) partials
  in
  Relation.create (Exec.infer_schema (output_names partials []) rows) rows

(* ---- shardability analysis ---- *)

let merged_table = "__merged"
let gname = Printf.sprintf "__g%d"
let aname = Printf.sprintf "__a%d"
let cname = Printf.sprintf "__c%d"

(* the engine's output-naming rule (Planner.derive_output_names),
   replicated so the finish query aliases its items to exactly the
   names the unsharded run would produce *)
let derive_output_names items =
  let taken = Hashtbl.create 8 in
  List.mapi
    (fun i ({ expr; alias } : Ast.select_item) ->
      let base =
        match alias with
        | Some a -> a
        | None -> (
          match (expr : Ast.expr) with
          | Col { name; _ } -> name
          | _ -> Printf.sprintf "expr%d" (i + 1))
      in
      let name =
        if not (Hashtbl.mem taken base) then base
        else
          let rec go k =
            let candidate = Printf.sprintf "%s_%d" base k in
            if Hashtbl.mem taken candidate then go (k + 1) else candidate
          in
          go 2
      in
      Hashtbl.replace taken name ();
      name)
    items

let rec collect_aggs acc (e : Ast.expr) =
  match e with
  | Agg _ -> if List.exists (Ast.equal_expr e) acc then acc else acc @ [ e ]
  | Lit _ | Col _ -> acc
  | Unop (_, a) | Like (a, _) | Not_like (a, _) | In_list (a, _)
  | Is_null a | Is_not_null a ->
    collect_aggs acc a
  | Binop (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | Between (a, b, c) -> collect_aggs (collect_aggs (collect_aggs acc a) b) c
  | In_query _ | Exists _ | Scalar_subquery _ -> acc

(* Rewrite [e] over the partial columns: any subexpression equal to a
   mapped expression (a GROUP BY key, a collected aggregate, or a
   select item) becomes a bare column reference into [__merged];
   everything else must be built from mapped pieces and literals.
   [None] means the query cannot be finished over partials — the
   caller falls back to unsharded execution. *)
let rec rewrite_over map (e : Ast.expr) : Ast.expr option =
  match List.find_opt (fun (src, _) -> Ast.equal_expr src e) map with
  | Some (_, name) -> Some (Ast.col name)
  | None -> (
    match e with
    | Lit _ -> Some e
    | Col _ | Agg _ -> None
    | Unop (op, a) -> Option.map (fun a -> Ast.Unop (op, a)) (rewrite_over map a)
    | Binop (op, a, b) -> (
      match (rewrite_over map a, rewrite_over map b) with
      | Some a, Some b -> Some (Binop (op, a, b))
      | _ -> None)
    | Like (a, p) -> Option.map (fun a -> Ast.Like (a, p)) (rewrite_over map a)
    | Not_like (a, p) ->
      Option.map (fun a -> Ast.Not_like (a, p)) (rewrite_over map a)
    | In_list (a, vs) ->
      Option.map (fun a -> Ast.In_list (a, vs)) (rewrite_over map a)
    | Between (a, b, c) -> (
      match (rewrite_over map a, rewrite_over map b, rewrite_over map c) with
      | Some a, Some b, Some c -> Some (Between (a, b, c))
      | _ -> None)
    | Is_null a -> Option.map (fun a -> Ast.Is_null a) (rewrite_over map a)
    | Is_not_null a ->
      Option.map (fun a -> Ast.Is_not_null a) (rewrite_over map a)
    | In_query _ | Exists _ | Scalar_subquery _ -> None)

let rec option_all = function
  | [] -> Some []
  | None :: _ -> None
  | Some x :: rest -> Option.map (fun xs -> x :: xs) (option_all rest)

(* The partition table: a FROM table whose name occurs exactly once
   (a self-joined table cannot be partitioned — cross-shard row pairs
   would be lost) and that the shard catalogs know (i.e. a dirty
   table).  Among candidates, the one with the largest base
   cardinality — sharding the biggest table moves the most work —
   with the lexicographically first name breaking ties. *)
let partition_table_of session (q : Ast.query) =
  let names = List.map (fun (r : Ast.table_ref) -> r.table) q.from in
  let candidates =
    List.filter
      (fun n ->
        List.length (List.filter (String.equal n) names) = 1
        && Database.relation_opt session.fragments.(0) n <> None)
      names
  in
  let card n =
    match Database.relation_opt session.base n with
    | Some r -> Relation.cardinality r
    | None -> 0
  in
  List.fold_left
    (fun best n ->
      match best with
      | None -> Some n
      | Some b ->
        let cb = card b and cn = card n in
        if cn > cb || (cn = cb && String.compare n b < 0) then Some n else best)
    None candidates

let plan_query session (q : Ast.query) : plan option =
  if Ast.query_has_subqueries q then None
  else if q.outer_joins <> [] then None
  else if q.limit <> None then None
  else
    match q.select with
    | Star -> None
    | Items items -> (
      match partition_table_of session q with
      | None -> None
      | Some frag_table ->
        let order_exprs = List.map (fun (o : Ast.order_item) -> o.o_expr) q.order_by in
        let grouped =
          q.group_by <> []
          || List.exists (fun (it : Ast.select_item) -> Ast.has_aggregates it.expr) items
          || (match q.having with Some h -> Ast.has_aggregates h | None -> false)
          || List.exists Ast.has_aggregates order_exprs
        in
        let out_names = derive_output_names items in
        if grouped then begin
          if q.distinct then None
          else
            let sources =
              List.map (fun (it : Ast.select_item) -> it.expr) items
              @ (match q.having with Some h -> [ h ] | None -> [])
              @ order_exprs
            in
            let aggs = List.fold_left collect_aggs [] sources in
            if List.exists (function Ast.Agg (Avg, _) -> true | _ -> false) aggs
            then None (* AVG partials are not additively mergeable *)
            else
              let group_map = List.mapi (fun i g -> (g, gname i)) q.group_by in
              let agg_map = List.mapi (fun i a -> (a, aname i)) aggs in
              let map = group_map @ agg_map in
              let fitems =
                option_all
                  (List.map2
                     (fun (it : Ast.select_item) name ->
                       Option.map
                         (fun e -> { Ast.expr = e; alias = Some name })
                         (rewrite_over map it.expr))
                     items out_names)
              in
              let fhaving =
                match q.having with
                | None -> Some None
                | Some h -> Option.map Option.some (rewrite_over map h)
              in
              let forder =
                option_all
                  (List.map
                     (fun (o : Ast.order_item) ->
                       Option.map
                         (fun e -> { Ast.o_expr = e; desc = o.desc })
                         (rewrite_over map o.o_expr))
                     q.order_by)
              in
              (match (fitems, fhaving, forder) with
              | Some fitems, Some fhaving, Some forder ->
                let frag_query =
                  {
                    Ast.distinct = false;
                    select =
                      Items
                        (List.map
                           (fun (e, n) -> { Ast.expr = e; alias = Some n })
                           (group_map @ agg_map));
                    from = q.from;
                    outer_joins = [];
                    where = q.where;
                    group_by = q.group_by;
                    having = None;
                    order_by = [];
                    limit = None;
                  }
                in
                let finish =
                  {
                    Ast.distinct = false;
                    select = Items fitems;
                    from = [ { Ast.table = merged_table; t_alias = None } ];
                    outer_joins = [];
                    where = fhaving;
                    group_by = [];
                    having = None;
                    order_by = forder;
                    limit = None;
                  }
                in
                Some
                  {
                    frag = { frag_table; frag_query };
                    kind =
                      Group
                        {
                          num_keys = List.length q.group_by;
                          agg_funs =
                            Array.of_list
                              (List.map
                                 (function
                                   | Ast.Agg (f, _) -> f
                                   | _ -> assert false)
                                 aggs);
                          finish;
                        };
                  }
              | _ -> None)
        end
        else if q.having <> None then None
        else
          (* SPJ: fragments compute the projected rows, the finish
             re-projects to the original names (and re-applies
             DISTINCT / ORDER BY globally) *)
          let item_map =
            List.mapi (fun i (it : Ast.select_item) -> (it.expr, cname i)) items
          in
          let forder =
            option_all
              (List.map
                 (fun (o : Ast.order_item) ->
                   Option.map
                     (fun e -> { Ast.o_expr = e; desc = o.desc })
                     (rewrite_over item_map o.o_expr))
                 q.order_by)
          in
          (match forder with
          | None -> None
          | Some forder ->
            let frag_query =
              {
                q with
                select =
                  Items
                    (List.map
                       (fun (e, n) -> { Ast.expr = e; alias = Some n })
                       item_map);
                order_by = [];
              }
            in
            let finish =
              {
                Ast.distinct = q.distinct;
                select =
                  Items
                    (List.map2
                       (fun (_, n) out ->
                         { Ast.expr = Ast.col n; alias = Some out })
                       item_map out_names);
                from = [ { Ast.table = merged_table; t_alias = None } ];
                outer_joins = [];
                where = None;
                group_by = [];
                having = None;
                order_by = forder;
                limit = None;
              }
            in
            Some { frag = { frag_table; frag_query }; kind = Select { finish } }))

(* ---- scatter / gather ---- *)

let scatter session p ~f =
  let dbs =
    Array.init session.nshards (fun s ->
        Database.overlay session.base ~name:p.frag.frag_table
          ~from:session.fragments.(s))
  in
  Parallel.init ~jobs:session.nshards session.nshards (fun s -> f dbs.(s))

let gather p partials =
  match p.kind with
  | Group { num_keys; agg_funs; _ } ->
    merge_partials ~num_keys ~aggs:agg_funs partials
  | Select _ -> concat_partials partials

(* The finish runs on the coordinator over the (small) merged
   intermediate, so the scatter config's budgets and spill threshold
   do not apply to it — each shard already charged its own budget. *)
let strip_limits (config : Planner.config option) =
  match config with
  | None -> None
  | Some c -> Some { c with max_rows = None; max_elapsed = None; spill_rows = None }

let finish_relation ?config p merged =
  let db = Database.create () in
  Database.add_relation db ~name:merged_table merged;
  let finish =
    match p.kind with Group g -> g.finish | Select s -> s.finish
  in
  Database.query_ast ?config:(strip_limits config) db finish

let with_shard_span session p f =
  Telemetry.Metrics.inc m_sharded;
  Telemetry.Span.with_ ~name:"engine.shard.query"
    ~attrs:
      [
        ("shards", string_of_int session.nshards);
        ("partition_table", p.frag.frag_table);
      ]
    f

let query_ast ?config session q =
  match plan_query session q with
  | None ->
    Telemetry.Metrics.inc m_fallback;
    None
  | Some p ->
    with_shard_span session p (fun () ->
        let partials =
          scatter session p ~f:(fun db ->
              Database.query_ast ?config db p.frag.frag_query)
        in
        let merged = gather p (Array.to_list partials) in
        Some (finish_relation ?config p merged))

let query_ast_within ?config ?cancel session q =
  match plan_query session q with
  | None ->
    Telemetry.Metrics.inc m_fallback;
    None
  | Some p ->
    with_shard_span session p (fun () ->
        let results =
          scatter session p ~f:(fun db ->
              Database.query_ast_within ?config ?cancel db p.frag.frag_query)
        in
        let merged = gather p (Array.to_list (Array.map fst results)) in
        let stop =
          Array.fold_left
            (fun acc (_, (s : Database.stop)) ->
              {
                Database.truncated = acc.Database.truncated || s.truncated;
                cancelled = acc.cancelled || s.cancelled;
              })
            { Database.truncated = false; cancelled = false }
            results
        in
        Some (finish_relation ?config p merged, stop))
