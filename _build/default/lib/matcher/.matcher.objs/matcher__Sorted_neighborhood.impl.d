lib/matcher/sorted_neighborhood.ml: Array Dirty List Relation Schema Similarity String Union_find Value
