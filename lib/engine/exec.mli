(** Plan evaluation.

    Operators are materialized: each node produces a full
    {!Dirty.Relation.t}.  Joins are hash-based; aggregation is
    hash-grouped. *)

type catalog = {
  relation : string -> Dirty.Relation.t;
      (** base table by name. @raise Not_found for unknown tables *)
  index : string -> string -> Index.t option;
      (** [index table attr] is the persistent index, when one
          exists *)
}

exception Exec_error of string

val run :
  ?budget:Budget.t ->
  ?jobs:int ->
  ?chunked:bool ->
  catalog ->
  Plan.t ->
  Dirty.Relation.t
(** [jobs] (default [1]) caps the domains used for partition-parallel
    operators (hash join, filter, project, aggregate).  Results are
    bit-identical to a serial run for any [jobs]: chunk outputs are
    concatenated in input order and aggregate groups are merged in
    first-occurrence order.  Per-row budget-charged operators fall
    back to serial whenever [budget] is given, so [Truncate] prefixes
    stay well-defined.

    [chunked] (default [true]) selects the columnar chunk executor for
    Filter/Project/Hash_join/Aggregate: inputs are pivoted into
    {!Chunk.t} batches of [!Chunk.default_rows] rows, operators run
    one morsel (chunk) per scheduling unit, and chunk-friendly
    subtrees fuse column-to-column when no budget is in force and
    telemetry is off.  Chunk boundaries are a function of the data
    only, so the jobs=1 ≡ jobs=N guarantee carries over.  Relative to
    [chunked:false] (the row-at-a-time executor), results are
    identical except that multi-chunk float aggregate sums may differ
    in the last bits (per-morsel partials reassociate the
    accumulation; the order is still deterministic), and when several
    rows would each raise a type error the reported instance may
    differ (whether an error is raised never does).
    @raise Exec_error on semantic errors (unknown table, unbound or
    ambiguous column, type errors).
    @raise Budget.Exceeded when a [Raise]-mode budget runs out; with a
    [Truncate]-mode budget the result is the partial output produced
    within the budget (consult {!Budget.truncated}). *)

(** Per-operator execution statistics (EXPLAIN ANALYZE). *)
type profile = {
  operator : string;  (** short operator label, e.g. ["HashJoin"] *)
  out_rows : int;  (** rows the operator produced *)
  elapsed : float;  (** seconds, inclusive of children *)
  children : profile list;
}

val run_profiled :
  ?budget:Budget.t ->
  ?jobs:int ->
  ?chunked:bool ->
  catalog ->
  Plan.t ->
  Dirty.Relation.t * profile
(** Like {!run} but also returns the per-node statistics tree.
    Fusion is disabled so every node keeps its own row boundary (and
    an accurate [out_rows]); chunked aggregation re-slices its input
    at canonical chunk boundaries, so profiled results are
    bit-identical to {!run}'s. *)

val pp_profile : Format.formatter -> profile -> unit

val infer_schema :
  string list -> Dirty.Relation.row list -> Dirty.Schema.t
(** Output-schema inference for computed columns: each column's type
    is taken from its first non-null value (VARCHAR when none).
    Exposed for tests. *)
