(* Dirty TPC-H at a glance (the Section 5 setup, scaled down).

   Run with:  dune exec examples/tpch_demo.exe

   Generates a dirty TPC-H-style database (UIS-style duplicates with
   the paper's sf/if knobs), assigns probabilities with the Section 4
   procedure, and runs the paper's Query 3 both as-is and rewritten,
   reporting the rewriting overhead the paper measures in Figure 8. *)

module Relation = Dirty.Relation
module Dirty_db = Dirty.Dirty_db
module Cluster = Dirty.Cluster

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let config = { Tpch.Datagen.default with sf = 0.2; inconsistency = 3 } in
  Printf.printf "Generating dirty TPC-H data (sf = %g, if = %d)...\n" config.sf
    config.inconsistency;
  let db = Tpch.Datagen.generate config in
  List.iter
    (fun (name, rows) -> Printf.printf "  %-10s %6d rows\n" name rows)
    (Tpch.Datagen.row_counts db);

  (* recompute tuple probabilities from the clusterings (Figure 5);
     the generator's default is uniform within each cluster *)
  let t_assign, db = time (fun () -> Tpch.Datagen.assign_probabilities db) in
  Printf.printf "Probability assignment over all tables: %.1f ms\n"
    (t_assign *. 1000.0);
  (match Dirty_db.validate db with
  | [] -> print_endline "Dirty-database invariants hold."
  | problems ->
    List.iter print_endline problems;
    exit 1);

  let lineitem = Dirty_db.find_table db "lineitem" in
  Printf.printf "lineitem: %d tuples in %d clusters (mean size %.2f)\n"
    (Relation.cardinality lineitem.relation)
    (Cluster.num_clusters lineitem.clustering)
    (Cluster.mean_cluster_size lineitem.clustering);

  let session = Conquer.Clean.create db in
  let q3 = Tpch.Queries.find 3 in
  Printf.printf "\nTPC-H Query 3 (%s):\n%s\n" q3.description q3.sql;

  (match Conquer.Clean.rewrite session q3.sql with
  | Ok text -> Printf.printf "\nRewritten:\n%s\n" text
  | Error vs ->
    List.iter
      (fun v -> print_endline (Conquer.Rewritable.violation_to_string v))
      vs);

  let t_orig, original = time (fun () -> Conquer.Clean.original session q3.sql) in
  let t_rew, answers = time (fun () -> Conquer.Clean.answers session q3.sql) in
  Printf.printf
    "\noriginal: %d rows in %.2f ms\nrewritten: %d clean answers in %.2f ms \
     (%.2fx)\n"
    (Relation.cardinality original)
    (t_orig *. 1000.0)
    (Relation.cardinality answers)
    (t_rew *. 1000.0)
    (if t_orig > 0.0 then t_rew /. t_orig else 1.0);

  print_endline "\nTop clean answers (by the query's ORDER BY):";
  print_string (Relation.to_string ~max_rows:10 answers);

  (* every query of the paper's evaluation runs the same way *)
  print_endline "\nAll thirteen evaluation queries:";
  List.iter
    (fun (q : Tpch.Queries.query) ->
      let t, r = time (fun () -> Conquer.Clean.answers session q.sql) in
      Printf.printf "  Q%-3d %6d clean answers  %7.2f ms\n" q.qid
        (Relation.cardinality r) (t *. 1000.0))
    Tpch.Queries.all
