lib/prob/strdist.mli:
