lib/sql/lexer.mli:
