examples/tpch_demo.ml: Conquer Dirty List Printf Tpch Unix
