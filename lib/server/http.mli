(** A minimal, dependency-free HTTP/1.1 layer over [Unix] sockets.

    One request per connection ([Connection: close] on every
    response): the daemon's unit of admission control is the request,
    and a closed connection is an unambiguous client-disconnect signal
    for the cancellation reaper.  Reads are bounded in both size
    (header and body limits) and time ([SO_RCVTIMEO]), so a slow or
    hostile client can never pin a worker. *)

type request = {
  meth : string;  (** uppercased: GET, POST, ... *)
  path : string;  (** decoded path component, e.g. ["/query"] *)
  query : (string * string) list;  (** decoded query-string pairs *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

exception Bad_request of string
(** Malformed request line, header, or chunked framing we don't
    speak; answer 400. *)

exception Too_large of string
(** Header block or body over the configured limit; answer 413. *)

exception Timeout
(** The socket read timed out before a full request arrived. *)

exception Disconnected
(** The peer closed (or reset) the connection. *)

val max_header_bytes : int  (** 8 KiB *)

val max_body_bytes : int  (** 1 MiB *)

val read_request : ?read_timeout:float -> Unix.file_descr -> request
(** Read and parse one request.  [read_timeout] (default 5s) bounds
    the whole read via [SO_RCVTIMEO].
    @raise Bad_request, Too_large, Timeout or Disconnected. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val param : request -> string -> string option
(** Query-string parameter lookup. *)

val status_reason : int -> string
(** ["OK"], ["Service Unavailable"], ... *)

val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?content_type:string ->
  body:string ->
  unit ->
  unit
(** Write a complete response with [Content-Length] and
    [Connection: close].  @raise Disconnected on EPIPE/ECONNRESET. *)

(** {1 A small blocking client, for tests and the load-generator
    bench} *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

val request :
  host:string ->
  port:int ->
  ?meth:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  ?timeout:float ->
  string ->
  response
(** [request ~host ~port target] performs one HTTP exchange (default
    [meth] GET, or POST when [body] is given) and reads the response
    to EOF.  [headers] are sent verbatim after the built-in ones
    (e.g. [("x-trace-id", id)]).  [timeout] (default 30s) bounds both
    connect and read.
    @raise Unix.Unix_error on connection failure, Disconnected if the
    server closes mid-response. *)
