(* The process-wide telemetry switch.

   Telemetry is off by default; every recording operation (span entry,
   counter increment, histogram observation) first checks this flag,
   so the disabled cost is one ref dereference and a branch per
   instrumentation site.  The overhead budget (DESIGN.md §5d) is <3%
   on the tier-1 test suite with the switch off. *)

let flag = ref false

let enabled () = !flag
let enable () = flag := true
let disable () = flag := false

(* run [f] with telemetry forced on (restoring the previous state) *)
let with_enabled f =
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let with_disabled f =
  let saved = !flag in
  flag := false;
  Fun.protect ~finally:(fun () -> flag := saved) f
