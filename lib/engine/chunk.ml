open Dirty

(* A chunk is a fixed-capacity batch of rows pivoted into columns.
   Columns are unboxed when every non-null cell of the batch shares a
   type tag (int/float/bool/date arrays, dictionary-coded strings) and
   fall back to boxed [Value.t] arrays for mixed columns — relations
   here are dynamically typed per cell, so the classification is per
   chunk, not per schema.  Null positions are tracked in a side
   bitmap; the slot under a null holds a dummy and must never be read
   without consulting the bitmap. *)

(* rows per chunk when slicing a relation; a ref so tests can shrink
   it and exercise multi-chunk paths (boundary-straddling groups,
   morsel merges) on small inputs *)
let default_rows = ref 2048

type data =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Dates of int array
  | Strings of { codes : int array; dict : string array }
  | Boxed of Value.t array

type col = { data : data; nulls : Bytes.t option }

type t = { length : int; cols : col array }

(* ---- null bitmaps ---- *)

let bitmap_create n = Bytes.make ((n + 7) / 8) '\000'

let bitmap_set b i =
  let byte = i lsr 3 in
  Bytes.unsafe_set b byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl (i land 7))))

let bitmap_get b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* exported for kernel code (e.g. the executor's arithmetic kernels)
   that builds result columns with their null bitmaps directly *)
module Bitmap = struct
  let create = bitmap_create
  let set = bitmap_set
  let get = bitmap_get
end

let is_null col i =
  match col.nulls with None -> false | Some b -> bitmap_get b i

(* ---- cell access (re-boxing) ---- *)

let cell col i =
  if is_null col i then Value.Null
  else
    match col.data with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Bools a -> Value.Bool a.(i)
    | Dates a -> Value.Date a.(i)
    | Strings { codes; dict } -> Value.String dict.(codes.(i))
    | Boxed a -> a.(i)

let row t i = Array.map (fun c -> cell c i) t.cols

(* ---- column extraction ---- *)

type kind = KNone | KInt | KFloat | KBool | KDate | KString | KMixed

let kind_of (v : Value.t) =
  match v with
  | Value.Null -> KNone
  | Value.Int _ -> KInt
  | Value.Float _ -> KFloat
  | Value.Bool _ -> KBool
  | Value.Date _ -> KDate
  | Value.String _ -> KString

let join_kind k v =
  match kind_of v with
  | KNone -> k
  | kv -> if k = KNone || k = kv then kv else KMixed

(* pivot one column out of [values]; two passes: classify, then fill
   the typed array (dummy slots under nulls) *)
let col_of_values (values : Value.t array) : col =
  let n = Array.length values in
  let kind = ref KNone and nnull = ref 0 in
  for i = 0 to n - 1 do
    if Value.is_null values.(i) then incr nnull
    else kind := join_kind !kind values.(i)
  done;
  let nulls =
    if !nnull = 0 then None
    else begin
      let b = bitmap_create n in
      for i = 0 to n - 1 do
        if Value.is_null values.(i) then bitmap_set b i
      done;
      Some b
    end
  in
  let data =
    match !kind with
    | KInt ->
      Ints
        (Array.init n (fun i ->
             match values.(i) with Value.Int x -> x | _ -> 0))
    | KFloat ->
      Floats
        (Array.init n (fun i ->
             match values.(i) with Value.Float x -> x | _ -> 0.0))
    | KBool ->
      Bools
        (Array.init n (fun i ->
             match values.(i) with Value.Bool x -> x | _ -> false))
    | KDate ->
      Dates
        (Array.init n (fun i ->
             match values.(i) with Value.Date x -> x | _ -> 0))
    | KString ->
      let codes = Array.make n 0 in
      let tbl = Hashtbl.create 64 in
      let rev = ref [] and next = ref 0 in
      for i = 0 to n - 1 do
        match values.(i) with
        | Value.String s ->
          codes.(i) <-
            (match Hashtbl.find_opt tbl s with
            | Some c -> c
            | None ->
              let c = !next in
              Hashtbl.add tbl s c;
              rev := s :: !rev;
              incr next;
              c)
        | _ -> ()
      done;
      let dict = Array.make (max 1 !next) "" in
      List.iteri (fun i s -> dict.(!next - 1 - i) <- s) !rev;
      Strings { codes; dict }
    | KNone | KMixed -> Boxed values
  in
  { data; nulls }

let of_rows (rows : Value.t array array) ~lo ~len ~arity =
  {
    length = len;
    cols =
      Array.init arity (fun j ->
          col_of_values (Array.init len (fun i -> rows.(lo + i).(j))));
  }

(* a broadcast literal as a single-valued column *)
let const n (v : Value.t) : col =
  match v with
  | Value.Null ->
    let b = bitmap_create n in
    for i = 0 to n - 1 do bitmap_set b i done;
    { data = Ints (Array.make n 0); nulls = Some b }
  | Value.Int x -> { data = Ints (Array.make n x); nulls = None }
  | Value.Float x -> { data = Floats (Array.make n x); nulls = None }
  | Value.Bool x -> { data = Bools (Array.make n x); nulls = None }
  | Value.Date x -> { data = Dates (Array.make n x); nulls = None }
  | Value.String s ->
    { data = Strings { codes = Array.make n 0; dict = [| s |] }; nulls = None }

(* ---- materialization back to rows ---- *)

let blit_rows t (out : Value.t array array) ~pos =
  for i = 0 to t.length - 1 do
    out.(pos + i) <- row t i
  done

let rows_of t = Array.init t.length (fun i -> row t i)

(* ---- gather (selection vectors) ---- *)

let gather_col col (sel : int array) : col =
  let n = Array.length sel in
  let nulls =
    match col.nulls with
    | None -> None
    | Some b ->
      let any = ref false in
      let nb = bitmap_create n in
      for i = 0 to n - 1 do
        if bitmap_get b sel.(i) then begin
          any := true;
          bitmap_set nb i
        end
      done;
      if !any then Some nb else None
  in
  let data =
    match col.data with
    | Ints a -> Ints (Array.init n (fun i -> a.(sel.(i))))
    | Floats a -> Floats (Array.init n (fun i -> a.(sel.(i))))
    | Bools a -> Bools (Array.init n (fun i -> a.(sel.(i))))
    | Dates a -> Dates (Array.init n (fun i -> a.(sel.(i))))
    | Strings { codes; dict } ->
      (* the dictionary is shared, not rebuilt: codes stay valid *)
      Strings { codes = Array.init n (fun i -> codes.(sel.(i))); dict }
    | Boxed a -> Boxed (Array.init n (fun i -> a.(sel.(i))))
  in
  { data; nulls }

let gather t sel =
  { length = Array.length sel; cols = Array.map (fun c -> gather_col c sel) t.cols }

(* ---- concatenation (flattening a chunk list into one batch) ---- *)

(* null bitmaps re-packed element-wise (chunk lengths are not byte
   aligned); [None] when no source column carries nulls *)
let concat_nulls total (chunks : t array) j =
  if Array.for_all (fun ch -> ch.cols.(j).nulls = None) chunks then None
  else begin
    let b = bitmap_create total in
    let pos = ref 0 in
    Array.iter
      (fun ch ->
        let c = ch.cols.(j) in
        for i = 0 to ch.length - 1 do
          if is_null c i then bitmap_set b (!pos + i)
        done;
        pos := !pos + ch.length)
      chunks;
    Some b
  end

(* when every chunk agrees on the column's representation the typed
   arrays concatenate directly — no re-boxing, and for strings no
   dictionary re-hash: dictionaries are appended (duplicate entries
   across source chunks are harmless, nothing assumes dict
   uniqueness) and codes are offset *)
let concat_col_fast total (chunks : t array) j : data option =
  let datum ch = ch.cols.(j).data in
  let parts f = Array.to_list (Array.map (fun ch -> f (datum ch)) chunks) in
  match datum chunks.(0) with
  | Ints _ when Array.for_all (fun ch -> match datum ch with Ints _ -> true | _ -> false) chunks ->
    Some (Ints (Array.concat (parts (function Ints a -> a | _ -> assert false))))
  | Floats _ when Array.for_all (fun ch -> match datum ch with Floats _ -> true | _ -> false) chunks ->
    Some (Floats (Array.concat (parts (function Floats a -> a | _ -> assert false))))
  | Bools _ when Array.for_all (fun ch -> match datum ch with Bools _ -> true | _ -> false) chunks ->
    Some (Bools (Array.concat (parts (function Bools a -> a | _ -> assert false))))
  | Dates _ when Array.for_all (fun ch -> match datum ch with Dates _ -> true | _ -> false) chunks ->
    Some (Dates (Array.concat (parts (function Dates a -> a | _ -> assert false))))
  | Strings _ when Array.for_all (fun ch -> match datum ch with Strings _ -> true | _ -> false) chunks ->
    let codes = Array.make total 0 in
    let pos = ref 0 and base = ref 0 in
    Array.iter
      (fun ch ->
        match datum ch with
        | Strings { codes = c; dict } ->
          Array.iteri (fun i code -> codes.(!pos + i) <- !base + code) c;
          pos := !pos + ch.length;
          base := !base + Array.length dict
        | _ -> assert false)
      chunks;
    Some
      (Strings
         {
           codes;
           dict =
             Array.concat
               (parts (function Strings { dict; _ } -> dict | _ -> assert false));
         })
  | Boxed _ when Array.for_all (fun ch -> match datum ch with Boxed _ -> true | _ -> false) chunks ->
    Some (Boxed (Array.concat (parts (function Boxed a -> a | _ -> assert false))))
  | _ -> None

let concat ~arity (chunks : t array) : t =
  let total = Array.fold_left (fun acc c -> acc + c.length) 0 chunks in
  {
    length = total;
    cols =
      Array.init arity (fun j ->
          match
            if Array.length chunks > 0 then concat_col_fast total chunks j
            else None
          with
          | Some data -> { data; nulls = concat_nulls total chunks j }
          | None ->
            (* kinds disagree across chunks: concatenate through the
               boxed form and re-classify; per-column cost is one pass
               over the values *)
            let values = Array.make total Value.Null in
            let pos = ref 0 in
            Array.iter
              (fun ch ->
                let c = ch.cols.(j) in
                for i = 0 to ch.length - 1 do
                  values.(!pos + i) <- cell c i
                done;
                pos := !pos + ch.length)
              chunks;
            col_of_values values);
  }

(* ---- schema inference support ---- *)

(* the type tag of the column's first non-null cell, as
   [Exec.infer_schema] would see it; [None] when the chunk has no
   non-null cell in that column *)
let column_ty t j =
  let col = t.cols.(j) in
  let rec go i =
    if i >= t.length then None
    else if is_null col i then go (i + 1)
    else Value.type_of (cell col i)
  in
  go 0
