open Dirty

type catalog = {
  relation : string -> Relation.t;
  index : string -> string -> Index.t option;
}

exception Exec_error of string

let exec_errorf fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* ---- telemetry ----

   Per-operator spans and registry counters.  Everything is gated on
   {!Telemetry.Control.enabled}, so the disabled cost on the per-row
   paths is a flag test. *)

let m_operators =
  Telemetry.Metrics.counter "engine.exec.operators"
    ~help:"plan operators evaluated"

let m_rows_out =
  Telemetry.Metrics.counter "engine.exec.rows_out"
    ~help:"rows materialized by plan operators (intermediates included)"

let m_budget_ticks =
  Telemetry.Metrics.counter "engine.exec.budget_ticks"
    ~help:"per-row budget charges inside join emit loops"

let h_operator_seconds =
  Telemetry.Metrics.histogram "engine.exec.operator_seconds"
    ~help:"wall-clock per plan operator (inclusive of children)"

let m_chunks_out =
  Telemetry.Metrics.counter "engine.exec.chunks_out"
    ~help:"column chunks produced by chunked operators"

let h_rows_per_chunk =
  Telemetry.Metrics.histogram "engine.exec.rows_per_chunk"
    ~help:"rows per chunk emitted by chunked operators"

let operator_label (plan : Plan.t) =
  match plan with
  | Scan { table; _ } -> "Scan " ^ table
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Hash_join _ -> "HashJoin"
  | Index_join { table; _ } -> "IndexJoin " ^ table
  | Left_outer_join _ -> "LeftOuterJoin"
  | Cross _ -> "CrossProduct"
  | Aggregate _ -> "Aggregate"
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | Limit _ -> "Limit"

(* ---- budget accounting ----

   Operators charge the budget per materialized row.  In [Raise] mode
   {!Budget.admit} raises {!Budget.Exceeded} itself; in [Truncate]
   mode it stops admitting rows, and the local [Budget_stop] exception
   unwinds the operator's emit loop so it finishes with the partial
   output produced so far. *)

exception Budget_stop

let tick budget =
  match budget with
  | None -> ()
  | Some b ->
    Telemetry.Metrics.inc m_budget_ticks;
    if Budget.admit b 1 = 0 then raise Budget_stop

(* nodes whose emit loops tick per row; everything else is charged on
   its materialized output at the node boundary *)
let per_row_charged (plan : Plan.t) =
  match plan with
  | Hash_join _ | Left_outer_join _ | Cross _ | Index_join _ -> true
  | Scan _ | Filter _ | Project _ | Aggregate _ | Sort _ | Distinct _ | Limit _ ->
    false

(* Result of a per-row-charged emit loop.  A cancelled execution's
   partial rows are discarded at every node boundary above anyway, so
   don't pay to reverse and materialize a possibly huge accumulator —
   this is part of what keeps cancellation latency bounded. *)
let emit_result budget out_schema out =
  match budget with
  | Some b when Budget.cancelled b -> Relation.create out_schema []
  | _ -> Relation.create out_schema (List.rev !out)

let infer_column_ty rows j =
  let rec go = function
    | [] -> Value.TString
    | row :: rest -> (
      match Value.type_of row.(j) with Some ty -> ty | None -> go rest)
  in
  go rows

let infer_schema names rows =
  Schema.make (List.mapi (fun j name -> (name, infer_column_ty rows j)) names)

let compile schema e =
  try Expr.compile schema e with
  | Expr.Unbound_column c -> exec_errorf "unbound column %s" c
  | Expr.Ambiguous_column c -> exec_errorf "ambiguous column %s" c
  | Expr.Type_error msg -> raise (Exec_error msg)

let predicate schema e =
  let f = compile schema e in
  fun row -> Expr.truth (f row)

(* ---- aggregation ---- *)

type agg_state =
  | Count_state of int ref
  | Sum_state of { mutable int_sum : int; mutable float_sum : float;
                   mutable is_float : bool; mutable seen : bool }
  | Avg_state of { mutable total : float; mutable count : int }
  | Min_state of Value.t option ref
  | Max_state of Value.t option ref

let new_state (f : Sql.Ast.agg_fun) =
  match f with
  | Count -> Count_state (ref 0)
  | Sum -> Sum_state { int_sum = 0; float_sum = 0.0; is_float = false; seen = false }
  | Avg -> Avg_state { total = 0.0; count = 0 }
  | Min -> Min_state (ref None)
  | Max -> Max_state (ref None)

let feed state (v : Value.t option) =
  (* [v] is [None] for count-star, [Some value] otherwise *)
  match state, v with
  | Count_state r, None -> incr r
  | Count_state r, Some v -> if not (Value.is_null v) then incr r
  | Sum_state s, Some v -> (
    if not (Value.is_null v) then
      match v with
      | Value.Int i ->
        s.seen <- true;
        if s.is_float then s.float_sum <- s.float_sum +. float_of_int i
        else s.int_sum <- s.int_sum + i
      | _ -> (
        match Value.to_float v with
        | Some f ->
          s.seen <- true;
          if not s.is_float then begin
            s.is_float <- true;
            s.float_sum <- float_of_int s.int_sum
          end;
          s.float_sum <- s.float_sum +. f
        | None -> exec_errorf "SUM of non-numeric value %s" (Value.to_string v)))
  | Avg_state s, Some v -> (
    if not (Value.is_null v) then
      match Value.to_float v with
      | Some f ->
        s.total <- s.total +. f;
        s.count <- s.count + 1
      | None -> exec_errorf "AVG of non-numeric value %s" (Value.to_string v))
  | Min_state r, Some v ->
    if not (Value.is_null v) then begin
      match !r with
      | None -> r := Some v
      | Some m -> if Value.compare v m < 0 then r := Some v
    end
  | Max_state r, Some v ->
    if not (Value.is_null v) then begin
      match !r with
      | None -> r := Some v
      | Some m -> if Value.compare v m > 0 then r := Some v
    end
  | (Sum_state _ | Avg_state _ | Min_state _ | Max_state _), None ->
    exec_errorf "aggregate other than COUNT requires an argument"

let finish = function
  | Count_state r -> Value.Int !r
  | Sum_state s ->
    if not s.seen then Value.Null
    else if s.is_float then Value.Float s.float_sum
    else Value.Int s.int_sum
  | Avg_state s ->
    if s.count = 0 then Value.Null else Value.Float (s.total /. float_of_int s.count)
  | Min_state r | Max_state r -> Option.value ~default:Value.Null !r

(* Collect the distinct aggregate calls appearing in the given
   expressions, in syntactic order. *)
let collect_aggs exprs =
  let seen = ref [] in
  let rec go (e : Sql.Ast.expr) =
    match e with
    | Agg (_, _) -> if not (List.mem e !seen) then seen := e :: !seen
    | Lit _ | Col _ | Exists _ | Scalar_subquery _ -> ()
    | Unop (_, a) | Like (a, _) | Not_like (a, _) | In_list (a, _)
    | Is_null a | Is_not_null a | In_query (a, _) ->
      go a
    | Binop (_, a, b) -> go a; go b
    | Between (a, b, c) -> go a; go b; go c
  in
  List.iter go exprs;
  List.rev !seen

(* Substitute group-by expressions and aggregate calls with references
   to the intermediate columns #g<i> / #a<i>. *)
let rewrite_grouped ~group_by ~aggs e =
  let rec go (e : Sql.Ast.expr) : Sql.Ast.expr =
    match List.find_index (Sql.Ast.equal_expr e) group_by with
    | Some i -> Col { table = None; name = Printf.sprintf "#g%d" i }
    | None -> (
      match List.find_index (Sql.Ast.equal_expr e) aggs with
      | Some i -> Col { table = None; name = Printf.sprintf "#a%d" i }
      | None -> (
        match e with
        | Lit _ | Col _ -> e
        | Unop (op, a) -> Unop (op, go a)
        | Binop (op, a, b) -> Binop (op, go a, go b)
        | Like (a, p) -> Like (go a, p)
        | Not_like (a, p) -> Not_like (go a, p)
        | In_list (a, vs) -> In_list (go a, vs)
        | Between (a, b, c) -> Between (go a, go b, go c)
        | Is_null a -> Is_null (go a)
        | Is_not_null a -> Is_not_null (go a)
        | In_query (a, q) -> In_query (go a, q)
        | Exists _ | Scalar_subquery _ -> e
        | Agg _ ->
          exec_errorf "nested aggregate: %s" (Sql.Pretty.expr_to_string e)))
  in
  go e

(* Shared tail of the aggregation operators (row and chunked):
   [finished_rows] are [key columns @ aggregate columns] rows in
   first-occurrence group order; apply HAVING and the final projection
   over the #g/#a intermediate schema. *)
let aggregate_output ~group_by ~items ~having ~aggs finished_rows =
  let num_keys = List.length group_by in
  let num_aggs = List.length aggs in
  (* fast path: the output columns are exactly the group columns
     followed by the aggregates, and no HAVING — emit directly *)
  let rewritten_items =
    List.map (fun (e, n) -> (rewrite_grouped ~group_by ~aggs e, n)) items
  in
  let is_passthrough =
    having = None
    && List.length items = num_keys + num_aggs
    && List.for_all2
         (fun (e, _) i ->
           match (e : Sql.Ast.expr) with
           | Col { table = None; name } ->
             name
             = (if i < num_keys then Printf.sprintf "#g%d" i
                else Printf.sprintf "#a%d" (i - num_keys))
           | _ -> false)
         rewritten_items
         (List.init (List.length items) Fun.id)
  in
  if is_passthrough then
    Relation.create (infer_schema (List.map snd items) finished_rows) finished_rows
  else begin
    let inter_names =
      List.mapi (fun i _ -> Printf.sprintf "#g%d" i) group_by
      @ List.mapi (fun i _ -> Printf.sprintf "#a%d" i) aggs
    in
    let inter_schema = infer_schema inter_names finished_rows in
    let inter = Relation.create inter_schema finished_rows in
    let inter =
      match having with
      | None -> inter
      | Some h ->
        let h' = rewrite_grouped ~group_by ~aggs h in
        Relation.filter (predicate inter_schema h') inter
    in
    let out_names = List.map snd items in
    let out_fns = List.map (fun (e, _) -> compile inter_schema e) rewritten_items in
    let out_rows =
      List.map
        (fun row -> Array.of_list (List.map (fun f -> f row) out_fns))
        (Relation.row_list inter)
    in
    Relation.create (infer_schema out_names out_rows) out_rows
  end

module Key = struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec loop i = i >= Array.length a || (Value.equal a.(i) b.(i) && loop (i + 1)) in
    loop 0

  let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 a
end

module Ktbl = Hashtbl.Make (Key)

(* ---- partition-parallel helpers ----

   Operators with enough rows split their input into contiguous
   chunks, evaluate the chunks on the domain pool, and concatenate the
   per-chunk results in chunk order — so the output row order (and
   hence every downstream result) is bit-identical to a serial run.
   Small inputs stay serial: below [Parallel.min_rows_per_chunk] per
   requested job the handoff costs more than it saves. *)

let use_parallel ~jobs n = jobs > 1 && n >= jobs * !Parallel.min_rows_per_chunk

(* split [0..n-1] into contiguous ranges, a few per job so chunk
   stealing evens out skew; returns [(offset, length)] pairs *)
let chunk_ranges ~jobs n =
  let max_chunks = max 1 (n / max 1 !Parallel.min_rows_per_chunk) in
  let chunks = max 1 (min (jobs * 4) max_chunks) in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun i ->
      let lo = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (lo, len))

(* positive partition id for a group/join key *)
let key_pid ~nparts key = Key.hash key land max_int mod nparts

(* cancellation token forwarded to parallel regions: only in [Raise]
   budget mode, where aborting a region with [Cancel.Cancelled] is the
   desired outcome.  Truncate-mode executions must return partial
   rows, so their regions run to completion and the stop is observed
   at the next node boundary instead. *)
let region_cancel budget =
  match budget with
  | Some b when Budget.mode b = Budget.Raise -> Budget.cancel_token b
  | _ -> None

(* chunked parallel filter; preserves row order exactly *)
let run_filter ?cancel ~jobs pred rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if not (use_parallel ~jobs n) then Relation.filter pred rel
  else begin
    let ranges = chunk_ranges ~jobs n in
    let parts =
      Parallel.init ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          let acc = ref [] in
          for i = lo + len - 1 downto lo do
            if pred rows.(i) then acc := rows.(i) :: !acc
          done;
          !acc)
    in
    Relation.create (Relation.schema rel) (List.concat (Array.to_list parts))
  end

(* chunked parallel row mapping (Project); order-preserving *)
let run_map_rows ?cancel ~jobs f rel =
  let rows = Relation.rows rel in
  let n = Array.length rows in
  if not (use_parallel ~jobs n) then List.map f (Array.to_list rows)
  else begin
    let ranges = chunk_ranges ~jobs n in
    let parts =
      Parallel.init ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          List.init len (fun i -> f rows.(lo + i)))
    in
    List.concat (Array.to_list parts)
  end

(* an aggregate argument: count-star or a compiled expression *)
type agg_arg = Star_arg | Expr_arg of (Relation.row -> Value.t)

let feed_arg state arg row =
  match arg with
  | Star_arg -> feed state None
  | Expr_arg f -> feed state (Some (f row))

let run_aggregate ?cancel ~jobs input ~group_by ~items ~having =
  let in_schema = Relation.schema input in
  let key_fns = Array.of_list (List.map (compile in_schema) group_by) in
  let num_keys = Array.length key_fns in
  let exprs = List.map fst items @ Option.to_list having in
  let aggs = collect_aggs exprs in
  let agg_specs =
    Array.of_list
      (List.map
         (fun e ->
           match (e : Sql.Ast.expr) with
           | Agg (f, None) -> (f, Star_arg)
           | Agg (f, Some arg) -> (f, Expr_arg (compile in_schema arg))
           | _ -> assert false)
         aggs)
  in
  let num_aggs = Array.length agg_specs in
  let new_states () = Array.map (fun (f, _) -> new_state f) agg_specs in
  let rows = Relation.rows input in
  let n = Array.length rows in
  let feed_row states row =
    for i = 0 to num_aggs - 1 do
      feed_arg states.(i) (snd agg_specs.(i)) row
    done
  in
  (* Parallel grouping partitions GROUPS (by key hash), not rows: a
     partition owns every row of its groups and feeds them in original
     row order, so per-group accumulation (including float order) is
     exactly the serial one.  Merging sorts partitions' groups by
     first-occurrence row index, recovering serial group order — the
     whole operator is bit-identical to serial.  Ungrouped aggregates
     have a single group and stay serial. *)
  let finished_rows =
    if num_keys > 0 && use_parallel ~jobs n then begin
      let keys = Array.make n [||] in
      let nparts = min jobs Parallel.max_jobs in
      let pids = Array.make n 0 in
      let ranges = chunk_ranges ~jobs n in
      Parallel.run ?cancel ~jobs (Array.length ranges) (fun ci ->
          let lo, len = ranges.(ci) in
          for i = lo to lo + len - 1 do
            let key = Array.init num_keys (fun j -> key_fns.(j) rows.(i)) in
            keys.(i) <- key;
            pids.(i) <- key_pid ~nparts key
          done);
      let per_part =
        Parallel.init ?cancel ~jobs nparts (fun p ->
            let groups = Ktbl.create 64 in
            (* (first-occurrence row index, key, states), reversed *)
            let entries = ref [] in
            for i = 0 to n - 1 do
              if pids.(i) = p then begin
                let states =
                  match Ktbl.find_opt groups keys.(i) with
                  | Some states -> states
                  | None ->
                    let states = new_states () in
                    Ktbl.add groups keys.(i) states;
                    entries := (i, keys.(i), states) :: !entries;
                    states
                in
                feed_row states rows.(i)
              end
            done;
            List.rev !entries)
      in
      let merged =
        List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          (List.concat (Array.to_list per_part))
      in
      List.map
        (fun (_, key, states) -> Array.append key (Array.map finish states))
        merged
    end
    else begin
      let groups = Ktbl.create 256 in
      let order = ref [] in
      Array.iter
        (fun row ->
          let key = Array.init num_keys (fun i -> key_fns.(i) row) in
          let states =
            match Ktbl.find_opt groups key with
            | Some states -> states
            | None ->
              let states = new_states () in
              Ktbl.add groups key states;
              order := key :: !order;
              states
          in
          feed_row states row)
        rows;
      (* SQL semantics: an ungrouped aggregate over an empty input
         yields a single row of initial aggregate values *)
      if group_by = [] && Ktbl.length groups = 0 then begin
        Ktbl.add groups [||] (new_states ());
        order := [ [||] ]
      end;
      List.rev_map
        (fun key ->
          let states = Ktbl.find groups key in
          Array.append key (Array.map finish states))
        !order
    end
  in
  aggregate_output ~group_by ~items ~having ~aggs finished_rows

(* ---- joins ---- *)

(* A build-side bucket.  Rows are consed during the build (so they sit
   in reverse scan order) and reversed in place exactly once — lazily
   at the bucket's first probe hit in the serial path, eagerly after
   the partition build in the parallel path (probes there run on other
   domains and must not mutate).  Either way we never rebuild the
   whole table just to fix bucket order. *)
type bucket = { mutable b_rows : Relation.row list; mutable b_ordered : bool }

let bucket_add table key row =
  match Ktbl.find_opt table key with
  | Some b -> b.b_rows <- row :: b.b_rows
  | None -> Ktbl.add table key { b_rows = [ row ]; b_ordered = false }

let bucket_rows b =
  if not b.b_ordered then begin
    b.b_rows <- List.rev b.b_rows;
    b.b_ordered <- true
  end;
  b.b_rows

let run_hash_join ?budget ~jobs left right ~left_keys ~right_keys =
  let ls = Relation.schema left and rs = Relation.schema right in
  let lf = List.map (compile ls) left_keys and rf = List.map (compile rs) right_keys in
  let out_schema = Schema.append ls rs in
  let lrows = Relation.rows left and rrows = Relation.rows right in
  let nl = Array.length lrows and nr = Array.length rrows in
  let probe_key fns row =
    let key = Array.of_list (List.map (fun f -> f row) fns) in
    if Array.exists Value.is_null key then None else Some key
  in
  (* With a budget in force the join stays serial: rows are charged as
     they are emitted, and a parallel emit would make the Truncate
     prefix depend on scheduling. *)
  if Option.is_some budget || not (use_parallel ~jobs (nl + nr)) then begin
    let table = Ktbl.create (max 16 nr) in
    Array.iter
      (fun row ->
        match probe_key rf row with
        | Some key -> bucket_add table key row
        | None -> ())
      rrows;
    let out = ref [] in
    (try
       Array.iter
         (fun lrow ->
           match probe_key lf lrow with
           | None -> ()
           | Some key -> (
             match Ktbl.find_opt table key with
             | None -> ()
             | Some b ->
               List.iter
                 (fun rrow ->
                   tick budget;
                   out := Array.append lrow rrow :: !out)
                 (bucket_rows b)))
         lrows
     with Budget_stop -> ());
    emit_result budget out_schema out
  end
  else begin
    (* radix-partitioned build: extract build keys in parallel, build
       one sub-table per key partition in parallel (each partition
       scans the key array, touching only its own rows), then probe
       left chunks in parallel against the read-only tables.  Chunk
       outputs concatenate in order, so the result is bit-identical to
       the serial join. *)
    let nparts = min jobs Parallel.max_jobs in
    let rkeys = Array.make nr None in
    let rpids = Array.make nr 0 in
    let branges = chunk_ranges ~jobs nr in
    Parallel.run ~jobs (Array.length branges) (fun ci ->
        let lo, len = branges.(ci) in
        for i = lo to lo + len - 1 do
          match probe_key rf rrows.(i) with
          | Some key ->
            rkeys.(i) <- Some key;
            rpids.(i) <- key_pid ~nparts key
          | None -> ()
        done);
    let tables =
      Parallel.init ~jobs nparts (fun p ->
          let table = Ktbl.create (max 16 (nr / nparts)) in
          for i = 0 to nr - 1 do
            match rkeys.(i) with
            | Some key when rpids.(i) = p -> bucket_add table key rrows.(i)
            | _ -> ()
          done;
          Ktbl.iter
            (fun _ b ->
              b.b_rows <- List.rev b.b_rows;
              b.b_ordered <- true)
            table;
          table)
    in
    let pranges = chunk_ranges ~jobs nl in
    let parts =
      Parallel.init ~jobs (Array.length pranges) (fun ci ->
          let lo, len = pranges.(ci) in
          let acc = ref [] in
          for i = lo to lo + len - 1 do
            let lrow = lrows.(i) in
            match probe_key lf lrow with
            | None -> ()
            | Some key -> (
              match Ktbl.find_opt tables.(key_pid ~nparts key) key with
              | None -> ()
              | Some b ->
                List.iter
                  (fun rrow -> acc := Array.append lrow rrow :: !acc)
                  b.b_rows)
          done;
          List.rev !acc)
    in
    Relation.create out_schema (List.concat (Array.to_list parts))
  end

(* ---- spill-to-disk (Grace) hash join ----

   When a spill configuration is in force and the build side reaches
   the row threshold, both inputs are hash-partitioned by join key
   into on-disk run files and the join proceeds partition-at-a-time,
   bounding the in-memory hash table to roughly [spill_rows] build
   rows.  All file traffic goes through {!Fault.Io}, so chaos tests
   can fail or crash any syscall of a spill; a crashed spill leaves
   [.spill-*.tmp] debris for [Dirty.Store.recover] to sweep.

   Row codec: each row is one [Marshal] frame appended to its
   partition file; frames are buffered and flushed in large batches to
   keep the syscall count low.  Output is partition-major (partition
   ids ascending, probe rows in input order within each) — a
   bag-identical but differently ordered result from the in-memory
   join, which is the spill path's one documented divergence. *)

type spill = { spill_rows : int; spill_dir : string }

let m_spills =
  Telemetry.Metrics.counter "engine.exec.join_spills"
    ~help:"hash joins that spilled to disk"

let m_spill_bytes =
  Telemetry.Metrics.counter "engine.exec.join_spill_bytes"
    ~help:"bytes written to join spill partition files"

let spill_seq = Atomic.make 0
let spill_flush_bytes = 1 lsl 18

(* a lazily created partition run file: empty partitions never touch
   the disk, and small ones cost one write *)
type spill_file = {
  sf_path : string;
  mutable sf_writer : Fault.Io.writer option;
  sf_buf : Buffer.t;
}

let spill_file path =
  { sf_path = path; sf_writer = None; sf_buf = Buffer.create 4096 }

let spill_flush sf =
  if Buffer.length sf.sf_buf > 0 then begin
    let s = Buffer.contents sf.sf_buf in
    Buffer.clear sf.sf_buf;
    let w =
      match sf.sf_writer with
      | Some w -> w
      | None ->
        let w = Fault.Io.open_out sf.sf_path in
        sf.sf_writer <- Some w;
        w
    in
    Fault.Io.write w s;
    Telemetry.Metrics.inc ~n:(String.length s) m_spill_bytes
  end

let spill_add sf (row : Relation.row) =
  Buffer.add_string sf.sf_buf (Marshal.to_string row []);
  if Buffer.length sf.sf_buf >= spill_flush_bytes then spill_flush sf

let spill_close sf =
  spill_flush sf;
  match sf.sf_writer with None -> () | Some w -> Fault.Io.close w

let spill_read_rows path =
  (* a partition whose file was never created holds no rows *)
  if not (Sys.file_exists path) then []
  else begin
    let s = Fault.Io.read_file path in
    let bytes = Bytes.unsafe_of_string s in
    let len = String.length s in
    let torn () =
      raise
        (Fault.Io.Io_error
           { op = Read; path; msg = "torn spill frame"; transient = false })
    in
    let rec go ofs acc =
      if ofs >= len then List.rev acc
      else if len - ofs < Marshal.header_size then torn ()
      else begin
        let sz = Marshal.total_size bytes ofs in
        if ofs + sz > len then torn ()
        else begin
          let (row : Relation.row) = Marshal.from_string s ofs in
          go (ofs + sz) (row :: acc)
        end
      end
    in
    go 0 []
  end

let run_spill_hash_join ?budget ~spill left right ~left_keys ~right_keys =
  let ls = Relation.schema left and rs = Relation.schema right in
  let lf = List.map (compile ls) left_keys
  and rf = List.map (compile rs) right_keys in
  let out_schema = Schema.append ls rs in
  let probe_key fns row =
    let key = Array.of_list (List.map (fun f -> f row) fns) in
    if Array.exists Value.is_null key then None else Some key
  in
  let nr = Relation.cardinality right in
  let nparts =
    min 64 (max 2 ((nr + spill.spill_rows - 1) / max 1 spill.spill_rows))
  in
  Telemetry.Metrics.inc m_spills;
  let seq = Atomic.fetch_and_add spill_seq 1 in
  let path tag p =
    Filename.concat spill.spill_dir
      (Printf.sprintf ".spill-%d-%d-%s%d.tmp" (Unix.getpid ()) seq tag p)
  in
  let bfiles = Array.init nparts (fun p -> spill_file (path "b" p)) in
  let pfiles = Array.init nparts (fun p -> spill_file (path "p" p)) in
  let all_files = Array.to_list bfiles @ Array.to_list pfiles in
  let cleanup () =
    List.iter
      (fun sf ->
        (match sf.sf_writer with None -> () | Some w -> Fault.Io.abort w);
        if Sys.file_exists sf.sf_path then
          (* best effort: after a simulated crash [remove] is
             suppressed (a dead process cannot repair the disk) and
             the debris is [recover]'s to sweep *)
          try Fault.Io.remove sf.sf_path with _ -> ())
      all_files
  in
  Fun.protect ~finally:cleanup (fun () ->
      Telemetry.Span.with_ ~name:"exec.spill_join" (fun () ->
          (* partition both sides to disk in input order *)
          Relation.iter
            (fun row ->
              match probe_key rf row with
              | Some key -> spill_add bfiles.(key_pid ~nparts key) row
              | None -> ())
            right;
          Array.iter spill_close bfiles;
          Relation.iter
            (fun row ->
              match probe_key lf row with
              | Some key -> spill_add pfiles.(key_pid ~nparts key) row
              | None -> ())
            left;
          Array.iter spill_close pfiles;
          (* join one partition at a time; output is partition-major *)
          let out = ref [] in
          (try
             for p = 0 to nparts - 1 do
               match spill_read_rows bfiles.(p).sf_path with
               | [] -> ()
               | brows ->
                 let table = Ktbl.create (max 16 (List.length brows)) in
                 List.iter
                   (fun row ->
                     match probe_key rf row with
                     | Some key -> bucket_add table key row
                     | None -> ())
                   brows;
                 List.iter
                   (fun lrow ->
                     match probe_key lf lrow with
                     | None -> ()
                     | Some key -> (
                       match Ktbl.find_opt table key with
                       | None -> ()
                       | Some b ->
                         List.iter
                           (fun rrow ->
                             tick budget;
                             out := Array.append lrow rrow :: !out)
                           (bucket_rows b)))
                   (spill_read_rows pfiles.(p).sf_path)
             done
           with Budget_stop -> ());
          emit_result budget out_schema out))

(* Find an equality conjunct of [on] whose sides resolve strictly on
   the two inputs, to drive a hash path for the outer join; the rest
   of [on] is verified per candidate pair. *)
let split_outer_condition ls rs on =
  let resolves schema e =
    try
      List.iter (fun c -> ignore (Expr.resolve schema c)) (Sql.Ast.expr_columns e);
      Sql.Ast.expr_columns e <> []
    with Expr.Unbound_column _ | Expr.Ambiguous_column _ -> false
  in
  let conjuncts = Sql.Ast.conjuncts on in
  (* [acc] holds the skipped conjuncts in reverse; rev_append restores
     their order — consing keeps the scan linear in the conjunct count *)
  let rec pick acc = function
    | [] -> None
    | (Sql.Ast.Binop (Eq, a, b) as c) :: rest ->
      if resolves ls a && resolves rs b then Some ((a, b), List.rev_append acc rest)
      else if resolves rs a && resolves ls b then
        Some ((b, a), List.rev_append acc rest)
      else pick (c :: acc) rest
    | c :: rest -> pick (c :: acc) rest
  in
  pick [] conjuncts

let run_left_outer_join ?budget lrel rrel ~on =
  let ls = Relation.schema lrel and rs = Relation.schema rrel in
  let out_schema = Schema.append ls rs in
  let nulls = Array.make (Schema.arity rs) Dirty.Value.Null in
  let out = ref [] in
  (try
     match split_outer_condition ls rs on with
  | Some ((lkey, rkey), residual) ->
    let lf = compile ls lkey and rf = compile rs rkey in
    let table = Ktbl.create (max 16 (Relation.cardinality rrel)) in
    let add_bucket key row =
      let existing = Option.value ~default:[] (Ktbl.find_opt table key) in
      Ktbl.replace table key (row :: existing)
    in
    Relation.iter
      (fun rrow ->
        let key = [| rf rrow |] in
        if not (Value.is_null key.(0)) then add_bucket key rrow)
      rrel;
    let residual_pred =
      match Sql.Ast.conj residual with
      | None -> fun _ -> true
      | Some pred -> predicate out_schema pred
    in
    Relation.iter
      (fun lrow ->
        let key = [| lf lrow |] in
        let matches =
          if Value.is_null key.(0) then []
          else
            List.filter
              (fun combined -> residual_pred combined)
              (List.rev_map
                 (fun rrow -> Array.append lrow rrow)
                 (Option.value ~default:[] (Ktbl.find_opt table key)))
        in
        match matches with
        | [] ->
          tick budget;
          out := Array.append lrow nulls :: !out
        | rows ->
          List.iter
            (fun row ->
              tick budget;
              out := row :: !out)
            (List.rev rows))
      lrel
  | None ->
    (* general nested-loop outer join *)
    let pred = predicate out_schema on in
    Relation.iter
      (fun lrow ->
        let matched = ref false in
        Relation.iter
          (fun rrow ->
            let combined = Array.append lrow rrow in
            if pred combined then begin
              matched := true;
              tick budget;
              out := combined :: !out
            end)
          rrel;
        if not !matched then begin
          tick budget;
          out := Array.append lrow nulls :: !out
        end)
      lrel
   with Budget_stop -> ());
  emit_result budget out_schema out


(* ---- columnar chunk executor ----

   The chunked path evaluates Filter/Project/Hash_join/Aggregate a
   chunk at a time over {!Chunk.t} batches.  A morsel is one chunk;
   the unit handed to {!Parallel} is the chunk index, so workers steal
   fixed-size chunks instead of pre-split halves, and the output
   (chunks concatenated in index order) is bit-identical between
   jobs=1 and jobs=N: chunk boundaries depend on the data and
   [!Chunk.default_rows] only, never on the jobs count. *)

type ctable = { c_schema : Schema.t; c_chunks : Chunk.t array }

let note_chunks (chunks : Chunk.t array) =
  if Telemetry.Control.enabled () then begin
    Telemetry.Metrics.inc ~n:(Array.length chunks) m_chunks_out;
    Array.iter
      (fun (c : Chunk.t) ->
        Telemetry.Metrics.observe h_rows_per_chunk (float_of_int c.Chunk.length))
      chunks
  end

(* row-major to column-major pivot, one chunk per morsel *)
let pivot_relation ?cancel ~jobs rel =
  let n = Relation.cardinality rel in
  let arity = Schema.arity (Relation.schema rel) in
  let cap = max 1 !Chunk.default_rows in
  let nchunks = (n + cap - 1) / cap in
  Parallel.init ?cancel ~jobs nchunks (fun ci ->
      let lo = ci * cap in
      let len = min cap (n - lo) in
      {
        Chunk.length = len;
        cols =
          Array.init arity (fun j ->
              Chunk.col_of_values (Relation.column_slice rel ~col:j ~lo ~len));
      })

(* Pivot memoization.  Base tables are scanned by every query, and the
   pivot (classification + dictionary build) is the chunked path's
   dominant constant cost over them, so completed pivots are kept in a
   small cache keyed by the PHYSICAL identity of the relation's row
   array.  The rows array — not the relation — is the key because the
   executor re-wraps tables in alias-qualified schemas per query
   ([Relation.of_array schema (Relation.rows rel)] shares the array),
   and the pivot reads cell values only, never schema names.  Safe
   because the relational API is persistent: mutators like
   [Relation.map_rows] build new row arrays.  The array is held
   through a [Weak] pointer: dropping a table frees its pivot at the
   next insertion sweep.  Entries remember the chunk cap they were
   built with, so tests that shrink [!Chunk.default_rows] never see a
   stale slicing. *)
type pivot_entry = {
  p_rows : Value.t array array Weak.t;
  p_cap : int;
  p_chunks : Chunk.t array;
}

let pivot_cache : pivot_entry list ref = ref []
let pivot_lock = Mutex.create ()
let pivot_cache_limit = 32

let ctable_of_relation ?cancel ~jobs rel =
  let cap = max 1 !Chunk.default_rows in
  let rows = Relation.rows rel in
  let cached =
    Mutex.lock pivot_lock;
    let hit =
      List.find_opt
        (fun e ->
          e.p_cap = cap
          && match Weak.get e.p_rows 0 with Some r -> r == rows | None -> false)
        !pivot_cache
    in
    Mutex.unlock pivot_lock;
    hit
  in
  let chunks =
    match cached with
    | Some e -> e.p_chunks
    | None ->
      let chunks = pivot_relation ?cancel ~jobs rel in
      let w = Weak.create 1 in
      Weak.set w 0 (Some rows);
      Mutex.lock pivot_lock;
      let live =
        List.filter
          (fun e -> match Weak.get e.p_rows 0 with Some _ -> true | None -> false)
          !pivot_cache
      in
      let trimmed = List.filteri (fun i _ -> i < pivot_cache_limit - 1) live in
      pivot_cache := { p_rows = w; p_cap = cap; p_chunks = chunks } :: trimmed;
      Mutex.unlock pivot_lock;
      chunks
  in
  { c_schema = Relation.schema rel; c_chunks = chunks }

let relation_of_ctable ?cancel ~jobs ct =
  let chunks = ct.c_chunks in
  let n = Array.fold_left (fun acc (c : Chunk.t) -> acc + c.Chunk.length) 0 chunks in
  let offsets = Array.make (Array.length chunks) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i (c : Chunk.t) ->
      offsets.(i) <- !pos;
      pos := !pos + c.Chunk.length)
    chunks;
  let out = Array.make n [||] in
  Parallel.run ?cancel ~jobs (Array.length chunks) (fun ci ->
      Chunk.blit_rows chunks.(ci) out ~pos:offsets.(ci));
  Relation.of_array ct.c_schema out

(* output schema inference, matching [infer_schema] over the
   materialized rows: first non-null cell in row order, TString when
   the column is entirely null *)
let infer_ctable_schema names (chunks : Chunk.t array) =
  Schema.make
    (List.map
       (fun (j, name) ->
         let rec go ci =
           if ci >= Array.length chunks then Value.TString
           else
             match Chunk.column_ty chunks.(ci) j with
             | Some ty -> ty
             | None -> go (ci + 1)
         in
         (name, go 0))
       (List.mapi (fun j name -> (j, name)) names))

(* ---- vectorized expression evaluation ----

   [vcompile] turns an expression into a chunk-to-column function when
   every subexpression has a kernel; otherwise the operator falls back
   to the compiled row closure over the chunk's materialized rows.
   The kernels agree with the row path lane for lane.  When several
   lanes (or several subexpressions) would each raise, both paths
   raise — the columnar evaluation order may surface a different
   instance of the error, which is the one accepted divergence. *)

type vval = Vcol of Chunk.col | Vlit of Value.t

let vcell v i = match v with Vcol c -> Chunk.cell c i | Vlit x -> x
let vnull v i = match v with Vcol c -> Chunk.is_null c i | Vlit x -> Value.is_null x

let col_of_vval n v =
  match v with Vcol c -> c | Vlit x -> Chunk.const n x

(* or-combined null bitmap of two operands of a NULL-propagating
   operation; literal operands reaching the typed fast paths are never
   null (a null literal routes through the generic path) *)
let merged_nulls n a b =
  let bm v = match v with Vcol c -> c.Chunk.nulls | Vlit _ -> None in
  match bm a, bm b with
  | None, None -> None
  | Some x, None -> Some x
  | None, Some y -> Some y
  | Some x, Some y ->
    let nb = Chunk.Bitmap.create n in
    for i = 0 to n - 1 do
      if Chunk.Bitmap.get x i || Chunk.Bitmap.get y i then Chunk.Bitmap.set nb i
    done;
    Some nb

(* SQL predicate truth of every lane ([Expr.truth]: Null is false,
   non-boolean raises); loops run in ascending order so the first
   raising lane matches the row path's first bad row *)
let truth_mask v n : bool array =
  match v with
  | Vlit x -> Array.make n (Expr.truth x)
  | Vcol ({ Chunk.data = Chunk.Bools a; _ } as c) -> (
    match c.Chunk.nulls with
    | None -> Array.init n (fun i -> a.(i))
    | Some m -> Array.init n (fun i -> (not (Chunk.Bitmap.get m i)) && a.(i)))
  | Vcol c ->
    let out = Array.make n false in
    for i = 0 to n - 1 do
      out.(i) <- Expr.truth (Chunk.cell c i)
    done;
    out

(* numeric views: unboxed accessors over int/float columns and
   numeric literals; everything else goes through the generic path *)
type numview =
  | NInts of int array
  | NFloats of float array
  | NIntLit of int
  | NFloatLit of float
  | NOther

let numview v =
  match v with
  | Vlit (Value.Int i) -> NIntLit i
  | Vlit (Value.Float f) -> NFloatLit f
  | Vlit _ -> NOther
  | Vcol { Chunk.data = Chunk.Ints a; _ } -> NInts a
  | Vcol { Chunk.data = Chunk.Floats a; _ } -> NFloats a
  | Vcol _ -> NOther

let iget = function
  | NInts a -> fun i -> a.(i)
  | NIntLit k -> fun _ -> k
  | NFloats _ | NFloatLit _ | NOther -> assert false

let fget = function
  | NInts a -> fun i -> float_of_int a.(i)
  | NFloats a -> fun i -> a.(i)
  | NIntLit k ->
    let f = float_of_int k in
    fun _ -> f
  | NFloatLit k -> fun _ -> k
  | NOther -> assert false

let null_test = function
  | None -> fun _ -> false
  | Some m -> Chunk.Bitmap.get m

(* vectorized NULL-propagating arithmetic.  Division consults the null
   mask before the zero test: the row path yields NULL for [x / NULL]
   and [NULL / 0] without raising, and the dummy slot under a null is
   0, so testing the slot first would raise spuriously. *)
let arith_kernel (op : Sql.Ast.binop) a b n : Chunk.col =
  let va = numview a and vb = numview b in
  match va, vb with
  | NOther, _ | _, NOther ->
    let f =
      match op with
      | Sql.Ast.Add -> Expr.add
      | Sql.Ast.Sub -> Expr.sub
      | Sql.Ast.Mul -> Expr.mul
      | Sql.Ast.Div -> Expr.div
      | _ -> assert false
    in
    let out = Array.make n Value.Null in
    for i = 0 to n - 1 do
      out.(i) <- f (vcell a i) (vcell b i)
    done;
    Chunk.col_of_values out
  | (NInts _ | NIntLit _), (NInts _ | NIntLit _) ->
    let nulls = merged_nulls n a b in
    let ia = iget va and ib = iget vb in
    let out = Array.make n 0 in
    (match op with
    | Sql.Ast.Add -> for i = 0 to n - 1 do out.(i) <- ia i + ib i done
    | Sql.Ast.Sub -> for i = 0 to n - 1 do out.(i) <- ia i - ib i done
    | Sql.Ast.Mul -> for i = 0 to n - 1 do out.(i) <- ia i * ib i done
    | Sql.Ast.Div ->
      let is_null = null_test nulls in
      for i = 0 to n - 1 do
        if not (is_null i) then begin
          let d = ib i in
          if d = 0 then raise (Expr.Type_error "division by zero");
          out.(i) <- ia i / d
        end
      done
    | _ -> assert false);
    { Chunk.data = Chunk.Ints out; nulls }
  | _ ->
    (* at least one float operand: the row path coerces both to float *)
    let nulls = merged_nulls n a b in
    let fa = fget va and fb = fget vb in
    let out = Array.make n 0.0 in
    (match op with
    | Sql.Ast.Add -> for i = 0 to n - 1 do out.(i) <- fa i +. fb i done
    | Sql.Ast.Sub -> for i = 0 to n - 1 do out.(i) <- fa i -. fb i done
    | Sql.Ast.Mul -> for i = 0 to n - 1 do out.(i) <- fa i *. fb i done
    | Sql.Ast.Div ->
      let is_null = null_test nulls in
      for i = 0 to n - 1 do
        if not (is_null i) then begin
          let d = fb i in
          if d = 0.0 then raise (Expr.Type_error "division by zero");
          out.(i) <- fa i /. d
        end
      done
    | _ -> assert false);
    { Chunk.data = Chunk.Floats out; nulls }

let cmp_test (op : Sql.Ast.binop) =
  match op with
  | Sql.Ast.Eq -> fun c -> c = 0
  | Sql.Ast.Neq -> fun c -> c <> 0
  | Sql.Ast.Lt -> fun c -> c < 0
  | Sql.Ast.Le -> fun c -> c <= 0
  | Sql.Ast.Gt -> fun c -> c > 0
  | Sql.Ast.Ge -> fun c -> c >= 0
  | _ -> assert false

(* per-lane sign of [Value.compare (vcell a i) (vcell b i)] without
   re-boxing, for same-rank representation pairs; [None] falls back to
   boxed comparison.  The numeric cross cases go through
   [Value.compare_int_float], the same exact int/float comparison the
   boxed path uses (rounding the int would break transitivity). *)
let sign_fun a b : (int -> int) option =
  match a, b with
  | Vcol { Chunk.data = Chunk.Ints x; _ }, Vcol { Chunk.data = Chunk.Ints y; _ } ->
    Some (fun i -> Int.compare x.(i) y.(i))
  | Vcol { Chunk.data = Chunk.Ints x; _ }, Vlit (Value.Int k) ->
    Some (fun i -> Int.compare x.(i) k)
  | Vlit (Value.Int k), Vcol { Chunk.data = Chunk.Ints y; _ } ->
    Some (fun i -> Int.compare k y.(i))
  | Vcol { Chunk.data = Chunk.Floats x; _ }, Vcol { Chunk.data = Chunk.Floats y; _ }
    ->
    Some (fun i -> Float.compare x.(i) y.(i))
  | Vcol { Chunk.data = Chunk.Floats x; _ }, Vlit (Value.Float k) ->
    Some (fun i -> Float.compare x.(i) k)
  | Vlit (Value.Float k), Vcol { Chunk.data = Chunk.Floats y; _ } ->
    Some (fun i -> Float.compare k y.(i))
  | Vcol { Chunk.data = Chunk.Ints x; _ }, Vcol { Chunk.data = Chunk.Floats y; _ }
    ->
    Some (fun i -> Value.compare_int_float x.(i) y.(i))
  | Vcol { Chunk.data = Chunk.Floats x; _ }, Vcol { Chunk.data = Chunk.Ints y; _ }
    ->
    Some (fun i -> -Value.compare_int_float y.(i) x.(i))
  | Vcol { Chunk.data = Chunk.Ints x; _ }, Vlit (Value.Float k) ->
    Some (fun i -> Value.compare_int_float x.(i) k)
  | Vlit (Value.Float k), Vcol { Chunk.data = Chunk.Ints y; _ } ->
    Some (fun i -> -Value.compare_int_float y.(i) k)
  | Vcol { Chunk.data = Chunk.Floats x; _ }, Vlit (Value.Int k) ->
    Some (fun i -> -Value.compare_int_float k x.(i))
  | Vlit (Value.Int k), Vcol { Chunk.data = Chunk.Floats y; _ } ->
    Some (fun i -> Value.compare_int_float k y.(i))
  | Vcol { Chunk.data = Chunk.Dates x; _ }, Vcol { Chunk.data = Chunk.Dates y; _ }
    ->
    Some (fun i -> Int.compare x.(i) y.(i))
  | Vcol { Chunk.data = Chunk.Dates x; _ }, Vlit (Value.Date k) ->
    Some (fun i -> Int.compare x.(i) k)
  | Vlit (Value.Date k), Vcol { Chunk.data = Chunk.Dates y; _ } ->
    Some (fun i -> Int.compare k y.(i))
  | Vcol { Chunk.data = Chunk.Strings { codes; dict }; _ }, Vlit (Value.String s)
    ->
    (* one comparison per distinct string, then a table lookup *)
    let tbl = Array.map (fun d -> String.compare d s) dict in
    Some (fun i -> tbl.(codes.(i)))
  | Vlit (Value.String s), Vcol { Chunk.data = Chunk.Strings { codes; dict }; _ }
    ->
    let tbl = Array.map (fun d -> String.compare s d) dict in
    Some (fun i -> tbl.(codes.(i)))
  | ( Vcol { Chunk.data = Chunk.Strings sa; _ },
      Vcol { Chunk.data = Chunk.Strings sb; _ } ) ->
    Some (fun i -> String.compare sa.dict.(sa.codes.(i)) sb.dict.(sb.codes.(i)))
  | _ -> None

(* comparison truth per lane: false when either side is NULL *)
let cmp_mask op a b n : bool array =
  let test = cmp_test op in
  let out = Array.make n false in
  (match sign_fun a b with
  | Some sgn ->
    for i = 0 to n - 1 do
      if not (vnull a i || vnull b i) then out.(i) <- test (sgn i)
    done
  | None ->
    for i = 0 to n - 1 do
      let x = vcell a i and y = vcell b i in
      if not (Value.is_null x || Value.is_null y) then
        out.(i) <- test (Value.compare x y)
    done);
  out

let bool_col a = { Chunk.data = Chunk.Bools a; nulls = None }

let not_kernel v n : Chunk.col =
  let out = Array.make n false in
  (match v with
  | Vcol ({ Chunk.data = Chunk.Bools a; _ } as c) ->
    for i = 0 to n - 1 do
      if not (Chunk.is_null c i) then out.(i) <- not a.(i)
    done
  | _ ->
    for i = 0 to n - 1 do
      match vcell v i with
      | Value.Bool b -> out.(i) <- not b
      | Value.Null -> ()
      | x ->
        raise
          (Expr.Type_error
             (Printf.sprintf "NOT: expected boolean, got %s" (Value.to_string x)))
    done);
  bool_col out

let neg_kernel v n : Chunk.col =
  match v with
  | Vcol { Chunk.data = Chunk.Ints a; nulls } ->
    { Chunk.data = Chunk.Ints (Array.init n (fun i -> -a.(i))); nulls }
  | Vcol { Chunk.data = Chunk.Floats a; nulls } ->
    { Chunk.data = Chunk.Floats (Array.init n (fun i -> -.a.(i))); nulls }
  | _ ->
    let out = Array.make n Value.Null in
    for i = 0 to n - 1 do
      out.(i) <-
        (match vcell v i with
        | Value.Int x -> Value.Int (-x)
        | Value.Float x -> Value.Float (-.x)
        | Value.Null -> Value.Null
        | x ->
          raise
            (Expr.Type_error
               (Printf.sprintf "unary -: expected number, got %s"
                  (Value.to_string x))))
    done;
    Chunk.col_of_values out

let is_null_kernel v n ~negate : Chunk.col =
  let out = Array.make n false in
  (match v with
  | Vlit x ->
    let b = Value.is_null x <> negate in
    Array.fill out 0 n b
  | Vcol c ->
    for i = 0 to n - 1 do
      out.(i) <- Chunk.is_null c i <> negate
    done);
  bool_col out

(* LIKE over a dictionary column runs the matcher once per distinct
   string; the generic path mirrors the row semantics, where a
   non-null non-string is matched through [Value.to_string] *)
let like_kernel v n ~pattern ~negate : Chunk.col =
  let matcher = Expr.like_matcher pattern in
  let m s = if negate then not (matcher s) else matcher s in
  let out = Array.make n false in
  (match v with
  | Vcol ({ Chunk.data = Chunk.Strings { codes; dict }; _ } as c) ->
    let tbl = Array.map m dict in
    for i = 0 to n - 1 do
      if not (Chunk.is_null c i) then out.(i) <- tbl.(codes.(i))
    done
  | _ ->
    for i = 0 to n - 1 do
      match vcell v i with
      | Value.Null -> ()
      | Value.String s -> out.(i) <- m s
      | x -> out.(i) <- m (Value.to_string x)
    done);
  bool_col out

let in_list_kernel v n values : Chunk.col =
  let out = Array.make n false in
  (match v with
  | Vcol ({ Chunk.data = Chunk.Strings { codes; dict }; _ } as c) ->
    let tbl =
      Array.map (fun s -> List.exists (Value.equal (Value.String s)) values) dict
    in
    for i = 0 to n - 1 do
      if not (Chunk.is_null c i) then out.(i) <- tbl.(codes.(i))
    done
  | _ ->
    for i = 0 to n - 1 do
      let x = vcell v i in
      if not (Value.is_null x) then out.(i) <- List.exists (Value.equal x) values
    done);
  bool_col out

(* [Some (f, may_raise, bool_total)]: [may_raise] — evaluating the
   kernel can raise [Expr.Type_error] on some input; [bool_total] —
   every lane yields Bool/Null, so [Expr.truth] of any lane cannot
   raise.  Both drive the AND/OR gate: the row path short-circuits the
   right side, so vectorizing it is only sound when evaluating it on
   every lane cannot raise. *)
let rec vcompile schema (e : Sql.Ast.expr) :
    ((Chunk.t -> vval) * bool * bool) option =
  match e with
  | Lit v ->
    let bt = match v with Value.Bool _ | Value.Null -> true | _ -> false in
    Some ((fun _ -> Vlit v), false, bt)
  | Col c -> (
    match Expr.resolve schema c with
    | i -> Some ((fun ch -> Vcol ch.Chunk.cols.(i)), false, false)
    | exception (Expr.Unbound_column _ | Expr.Ambiguous_column _) ->
      (* fall back so the row compiler surfaces the proper error *)
      None)
  | Binop (((Add | Sub | Mul | Div) as op), a, b) -> (
    match vcompile schema a, vcompile schema b with
    | Some (fa, _, _), Some (fb, _, _) ->
      Some
        ( (fun ch -> Vcol (arith_kernel op (fa ch) (fb ch) ch.Chunk.length)),
          true,
          false )
    | _ -> None)
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) -> (
    match vcompile schema a, vcompile schema b with
    | Some (fa, ra, _), Some (fb, rb, _) ->
      Some
        ( (fun ch ->
            Vcol (bool_col (cmp_mask op (fa ch) (fb ch) ch.Chunk.length))),
          ra || rb,
          true )
    | _ -> None)
  | Binop (((And | Or) as op), a, b) -> (
    match vcompile schema a, vcompile schema b with
    | Some (fa, ra, bta), Some (fb, rb, btb) when (not rb) && btb ->
      let conj = match op with Sql.Ast.And -> true | _ -> false in
      let f ch =
        let n = ch.Chunk.length in
        let ma = truth_mask (fa ch) n in
        let mb = truth_mask (fb ch) n in
        let out = Array.make n false in
        if conj then
          for i = 0 to n - 1 do
            out.(i) <- ma.(i) && mb.(i)
          done
        else
          for i = 0 to n - 1 do
            out.(i) <- ma.(i) || mb.(i)
          done;
        Vcol (bool_col out)
      in
      Some (f, ra || not bta, true)
    | _ -> None)
  | Unop (Not, a) -> (
    match vcompile schema a with
    | Some (fa, ra, bta) ->
      Some
        ( (fun ch -> Vcol (not_kernel (fa ch) ch.Chunk.length)),
          ra || not bta,
          true )
    | None -> None)
  | Unop (Neg, a) -> (
    match vcompile schema a with
    | Some (fa, _, _) ->
      Some ((fun ch -> Vcol (neg_kernel (fa ch) ch.Chunk.length)), true, false)
    | None -> None)
  | Is_null a -> (
    match vcompile schema a with
    | Some (fa, ra, _) ->
      Some
        ( (fun ch -> Vcol (is_null_kernel (fa ch) ch.Chunk.length ~negate:false)),
          ra,
          true )
    | None -> None)
  | Is_not_null a -> (
    match vcompile schema a with
    | Some (fa, ra, _) ->
      Some
        ( (fun ch -> Vcol (is_null_kernel (fa ch) ch.Chunk.length ~negate:true)),
          ra,
          true )
    | None -> None)
  | Like (a, p) -> (
    match vcompile schema a with
    | Some (fa, ra, _) ->
      Some
        ( (fun ch ->
            Vcol (like_kernel (fa ch) ch.Chunk.length ~pattern:p ~negate:false)),
          ra,
          true )
    | None -> None)
  | Not_like (a, p) -> (
    match vcompile schema a with
    | Some (fa, ra, _) ->
      Some
        ( (fun ch ->
            Vcol (like_kernel (fa ch) ch.Chunk.length ~pattern:p ~negate:true)),
          ra,
          true )
    | None -> None)
  | In_list (a, vs) -> (
    match vcompile schema a with
    | Some (fa, ra, _) ->
      Some
        ( (fun ch -> Vcol (in_list_kernel (fa ch) ch.Chunk.length vs)),
          ra,
          true )
    | None -> None)
  | Between (a, lo, hi) -> (
    match vcompile schema a, vcompile schema lo, vcompile schema hi with
    | Some (fa, ra, _), Some (fl, rl, _), Some (fh, rh, _) ->
      let f ch =
        let n = ch.Chunk.length in
        let va = fa ch in
        let vl = fl ch in
        let vh = fh ch in
        let m1 = cmp_mask Sql.Ast.Le vl va n in
        let m2 = cmp_mask Sql.Ast.Le va vh n in
        let out = Array.make n false in
        for i = 0 to n - 1 do
          out.(i) <- m1.(i) && m2.(i)
        done;
        Vcol (bool_col out)
      in
      Some (f, ra || rl || rh, true)
    | _ -> None)
  | Agg _ | In_query _ | Exists _ | Scalar_subquery _ -> None

(* a chunk-level compiled expression: vectorized when possible, else
   the row closure applied over the chunk's materialized rows *)
type chunk_expr = CVec of (Chunk.t -> vval) | CRow of (Relation.row -> Value.t)

let chunk_compile schema e =
  match vcompile schema e with
  | Some (f, _, _) -> CVec f
  | None -> CRow (compile schema e)

(* [rows] is the lazily materialized row view of the chunk, shared by
   every row-compiled expression of the operator.  It is created and
   forced within a single morsel task, so the lazy cell never crosses
   domains. *)
let chunk_eval_col ce (ch : Chunk.t) rows : Chunk.col =
  match ce with
  | CVec f -> col_of_vval ch.Chunk.length (f ch)
  | CRow g ->
    let rows = Lazy.force rows in
    let n = ch.Chunk.length in
    let out = Array.make n Value.Null in
    for i = 0 to n - 1 do
      out.(i) <- g rows.(i)
    done;
    Chunk.col_of_values out

(* ---- chunked operators ---- *)

let chunked_filter ?cancel ~jobs ct pred =
  let pf =
    match vcompile ct.c_schema pred with
    | Some (f, _, _) -> `Vec f
    | None -> `Row (predicate ct.c_schema pred)
  in
  let out =
    Parallel.init ?cancel ~jobs (Array.length ct.c_chunks) (fun ci ->
        let ch = ct.c_chunks.(ci) in
        let n = ch.Chunk.length in
        let mask =
          match pf with
          | `Vec f -> truth_mask (f ch) n
          | `Row p ->
            let rows = Chunk.rows_of ch in
            let m = Array.make n false in
            for i = 0 to n - 1 do
              m.(i) <- p rows.(i)
            done;
            m
        in
        let count = ref 0 in
        Array.iter (fun b -> if b then incr count) mask;
        if !count = n then Some ch
        else if !count = 0 then None
        else begin
          let sel = Array.make !count 0 in
          let k = ref 0 in
          for i = 0 to n - 1 do
            if mask.(i) then begin
              sel.(!k) <- i;
              incr k
            end
          done;
          Some (Chunk.gather ch sel)
        end)
  in
  let chunks = Array.of_list (List.filter_map Fun.id (Array.to_list out)) in
  note_chunks chunks;
  { ct with c_chunks = chunks }

let chunked_project ?cancel ~jobs ct items =
  let ces =
    Array.of_list (List.map (fun (e, _) -> chunk_compile ct.c_schema e) items)
  in
  let out =
    Parallel.init ?cancel ~jobs (Array.length ct.c_chunks) (fun ci ->
        let ch = ct.c_chunks.(ci) in
        let rows = lazy (Chunk.rows_of ch) in
        {
          Chunk.length = ch.Chunk.length;
          cols = Array.map (fun ce -> chunk_eval_col ce ch rows) ces;
        })
  in
  note_chunks out;
  { c_schema = infer_ctable_schema (List.map snd items) out; c_chunks = out }

(* Chunk-at-a-time hash join.  The build side is flattened into one
   batch so bucket entries are plain global row ids; the build is
   radix-partitioned by key hash exactly like the row path; probes run
   one morsel per left chunk against the read-only partition tables.
   Output order — left chunks in index order, left rows ascending,
   bucket ids ascending — is the serial row join's order. *)
let chunked_hash_join ?cancel ~jobs lct rct ~left_keys ~right_keys =
  let ls = lct.c_schema and rs = rct.c_schema in
  let out_schema = Schema.append ls rs in
  let lkc = Array.of_list (List.map (chunk_compile ls) left_keys) in
  let rkc = Array.of_list (List.map (chunk_compile rs) right_keys) in
  let nkeys = Array.length lkc in
  let rchunk = Chunk.concat ~arity:(Schema.arity rs) rct.c_chunks in
  let nr = rchunk.Chunk.length in
  let rkeys = Array.make nr None in
  if nr > 0 then begin
    let rrows = lazy (Chunk.rows_of rchunk) in
    let kcols = Array.map (fun ce -> chunk_eval_col ce rchunk rrows) rkc in
    let cap = max 1 !Chunk.default_rows in
    Parallel.run ?cancel ~jobs ((nr + cap - 1) / cap) (fun si ->
        let lo = si * cap in
        let hi = min nr (lo + cap) - 1 in
        for i = lo to hi do
          let key = Array.init nkeys (fun j -> Chunk.cell kcols.(j) i) in
          if not (Array.exists Value.is_null key) then rkeys.(i) <- Some key
        done)
  end;
  let nparts = min (max 1 jobs) Parallel.max_jobs in
  let tables =
    Parallel.init ?cancel ~jobs nparts (fun p ->
        let tbl : int list ref Ktbl.t = Ktbl.create (max 16 (nr / nparts)) in
        for i = 0 to nr - 1 do
          match rkeys.(i) with
          | Some key when key_pid ~nparts key = p -> (
            match Ktbl.find_opt tbl key with
            | Some ids -> ids := i :: !ids
            | None -> Ktbl.add tbl key (ref [ i ]))
          | _ -> ()
        done;
        Ktbl.iter (fun _ ids -> ids := List.rev !ids) tbl;
        tbl)
  in
  let out =
    Parallel.init ?cancel ~jobs (Array.length lct.c_chunks) (fun ci ->
        let ch = lct.c_chunks.(ci) in
        let n = ch.Chunk.length in
        let rows = lazy (Chunk.rows_of ch) in
        let kcols = Array.map (fun ce -> chunk_eval_col ce ch rows) lkc in
        let lsel = ref (Array.make 16 0) and rsel = ref (Array.make 16 0) in
        let count = ref 0 in
        let push li ri =
          if !count = Array.length !lsel then begin
            let nl = Array.make (2 * !count) 0 and nr' = Array.make (2 * !count) 0 in
            Array.blit !lsel 0 nl 0 !count;
            Array.blit !rsel 0 nr' 0 !count;
            lsel := nl;
            rsel := nr'
          end;
          !lsel.(!count) <- li;
          !rsel.(!count) <- ri;
          incr count
        in
        for i = 0 to n - 1 do
          let key = Array.init nkeys (fun j -> Chunk.cell kcols.(j) i) in
          if not (Array.exists Value.is_null key) then
            match Ktbl.find_opt tables.(key_pid ~nparts key) key with
            | None -> ()
            | Some ids -> List.iter (fun ri -> push i ri) !ids
        done;
        if !count = 0 then None
        else begin
          let lg = Chunk.gather ch (Array.sub !lsel 0 !count) in
          let rg = Chunk.gather rchunk (Array.sub !rsel 0 !count) in
          Some
            {
              Chunk.length = !count;
              cols = Array.append lg.Chunk.cols rg.Chunk.cols;
            }
        end)
  in
  let chunks = Array.of_list (List.filter_map Fun.id (Array.to_list out)) in
  note_chunks chunks;
  { c_schema = out_schema; c_chunks = chunks }

(* Group-hash-partitioned chunked aggregation, mirroring the row
   path's [run_aggregate]: key and argument expressions are evaluated
   vectorized over the chunks as they stand, then groups — not row
   ranges — are partitioned by key hash.  A partition owns every row
   of its groups and feeds them in global row order, so per-group
   accumulation (including float order) is exactly the serial one;
   merging sorts partitions' groups by first-occurrence row index,
   recovering serial group order.  There is no partial merge and hence
   no float reassociation: the chunked aggregate is bit-identical to
   the row executor at any jobs count and any upstream chunk shape,
   and the hash work per row is done once (the old morsel-partial
   scheme re-discovered most groups in every morsel at high group
   cardinality — the ~2x filter-agg regression of ROADMAP item 1b). *)
let chunked_aggregate ?cancel ~jobs ct ~group_by ~items ~having =
  let in_schema = ct.c_schema in
  let key_ces = Array.of_list (List.map (chunk_compile in_schema) group_by) in
  let num_keys = Array.length key_ces in
  let exprs = List.map fst items @ Option.to_list having in
  let aggs = collect_aggs exprs in
  let agg_specs =
    Array.of_list
      (List.map
         (fun e ->
           match (e : Sql.Ast.expr) with
           | Agg (f, None) -> (f, None)
           | Agg (f, Some arg) -> (f, Some (chunk_compile in_schema arg))
           | _ -> assert false)
         aggs)
  in
  let num_aggs = Array.length agg_specs in
  let new_states () = Array.map (fun (f, _) -> new_state f) agg_specs in
  (* zero-length chunks contribute no rows and would stall the span
     walk below *)
  let chunks =
    Array.of_list
      (List.filter
         (fun (c : Chunk.t) -> c.Chunk.length > 0)
         (Array.to_list ct.c_chunks))
  in
  let nchunks = Array.length chunks in
  let total =
    Array.fold_left (fun acc (c : Chunk.t) -> acc + c.Chunk.length) 0 chunks
  in
  (* offsets.(i) = global row index of chunk i's first row *)
  let offsets = Array.make (nchunks + 1) 0 in
  Array.iteri
    (fun i (c : Chunk.t) -> offsets.(i + 1) <- offsets.(i) + c.Chunk.length)
    chunks;
  (* Key and argument expressions are evaluated vectorized, one parallel
     pass over the chunks as they stand — no concat, gather or row
     materialization however irregular the shapes.  Morsels then sit at
     canonical [cap] boundaries over the concatenated row sequence and
     read the evaluated columns through chunk-local spans. *)
  let evaled =
    Parallel.init ?cancel ~jobs nchunks (fun ci ->
        let ch = chunks.(ci) in
        let rows = lazy (Chunk.rows_of ch) in
        ( Array.map (fun ce -> chunk_eval_col ce ch rows) key_ces,
          Array.map
            (fun (_, arg) ->
              Option.map (fun ce -> chunk_eval_col ce ch rows) arg)
            agg_specs ))
  in
  (* keys.(g) = group key of global row g; shared by both paths *)
  let keys = Array.make total [||] in
  Parallel.run ?cancel ~jobs nchunks (fun ci ->
      let kcols, _ = evaled.(ci) in
      let base = offsets.(ci) in
      for i = 0 to chunks.(ci).Chunk.length - 1 do
        keys.(base + i) <- Array.init num_keys (fun j -> Chunk.cell kcols.(j) i)
      done);
  let feed_row states acols i =
    for a = 0 to num_aggs - 1 do
      match acols.(a) with
      | None -> feed states.(a) None
      | Some col -> feed states.(a) (Some (Chunk.cell col i))
    done
  in
  let finished_rows =
    if num_keys > 0 && use_parallel ~jobs total then begin
      let nparts = min jobs Parallel.max_jobs in
      let pids = Array.make total 0 in
      Parallel.run ?cancel ~jobs nchunks (fun ci ->
          let base = offsets.(ci) in
          for i = 0 to chunks.(ci).Chunk.length - 1 do
            pids.(base + i) <- key_pid ~nparts keys.(base + i)
          done);
      let per_part =
        Parallel.init ?cancel ~jobs nparts (fun p ->
            let groups = Ktbl.create 64 in
            (* (first-occurrence row index, key, states), reversed *)
            let entries = ref [] in
            for ci = 0 to nchunks - 1 do
              let _, acols = evaled.(ci) in
              let base = offsets.(ci) in
              for i = 0 to chunks.(ci).Chunk.length - 1 do
                let g = base + i in
                if pids.(g) = p then begin
                  let states =
                    match Ktbl.find_opt groups keys.(g) with
                    | Some states -> states
                    | None ->
                      let states = new_states () in
                      Ktbl.add groups keys.(g) states;
                      entries := (g, keys.(g), states) :: !entries;
                      states
                  in
                  feed_row states acols i
                end
              done
            done;
            List.rev !entries)
      in
      let merged =
        List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          (List.concat (Array.to_list per_part))
      in
      List.map
        (fun (_, key, states) -> Array.append key (Array.map finish states))
        merged
    end
    else begin
      let groups = Ktbl.create 256 in
      let order = ref [] in
      for ci = 0 to nchunks - 1 do
        let _, acols = evaled.(ci) in
        let base = offsets.(ci) in
        for i = 0 to chunks.(ci).Chunk.length - 1 do
          let states =
            match Ktbl.find_opt groups keys.(base + i) with
            | Some states -> states
            | None ->
              let states = new_states () in
              Ktbl.add groups keys.(base + i) states;
              order := keys.(base + i) :: !order;
              states
          in
          feed_row states acols i
        done
      done;
      (* SQL semantics: an ungrouped aggregate over an empty input
         yields a single row of initial aggregate values *)
      if group_by = [] && Ktbl.length groups = 0 then begin
        Ktbl.add groups [||] (new_states ());
        order := [ [||] ]
      end;
      List.rev_map
        (fun key ->
          let states = Ktbl.find groups key in
          Array.append key (Array.map finish states))
        !order
    end
  in
  aggregate_output ~group_by ~items ~having ~aggs finished_rows

(* ---- main interpreter ----

   The interpreter threads a [hook] around every node's evaluation so
   that {!run_profiled} can record per-operator statistics without a
   second copy of the evaluation logic.

   [chunked] selects the columnar executor for
   Filter/Project/Hash_join/Aggregate (the hash join keeps the serial
   row path under a budget, whose Truncate prefix is defined by
   per-row emission order).  [fuse] additionally lets maximal
   chunk-friendly subtrees evaluate column-to-column, skipping the
   row materialization between operators; it is disabled under
   budgets, telemetry, and profiling, which all need per-node row
   boundaries.  Fused and unfused runs return identical results. *)

type ctx = {
  budget : Budget.t option;
  jobs : int;
  hook : Plan.t -> (unit -> Relation.t) -> Relation.t;
  catalog : catalog;
  chunked : bool;
  fuse : bool;
  spill : spill option;
}

(* spill decisions need materialized join inputs, so a spill-enabled
   execution keeps per-node row boundaries *)
let can_fuse ctx =
  ctx.fuse && ctx.chunked
  && Option.is_none ctx.budget
  && Option.is_none ctx.spill
  && not (Telemetry.Control.enabled ())

let rec run_hooked ctx (plan : Plan.t) : Relation.t =
  (* bail out of deep plans promptly when the clock has run out *)
  (match ctx.budget with None -> () | Some b -> Budget.check_time b);
  let eval_node () = ctx.hook plan (fun () -> eval ctx (resolve_node ctx plan)) in
  let rel =
    if not (Telemetry.Control.enabled ()) then eval_node ()
    else
      Telemetry.Span.with_ ~name:("exec." ^ operator_label plan) (fun () ->
          let t0 = Unix.gettimeofday () in
          let rel = eval_node () in
          Telemetry.Metrics.observe h_operator_seconds (Unix.gettimeofday () -. t0);
          let n = Relation.cardinality rel in
          Telemetry.Metrics.inc m_operators;
          Telemetry.Metrics.inc ~n m_rows_out;
          Telemetry.Span.add_attr "rows_out" (string_of_int n);
          rel)
  in
  match ctx.budget with
  | None -> rel
  | Some _ when per_row_charged plan -> rel
  | Some b ->
    let n = Relation.cardinality rel in
    let allowed = Budget.admit b n in
    if allowed >= n then rel
    else Relation.of_array (Relation.schema rel) (Array.sub (Relation.rows rel) 0 allowed)

and run_child ctx plan =
  let rel = run_hooked ctx plan in
  (* Once a Truncate-mode budget has stopped, every node boundary
     above the stop admits 0 rows anyway — so hand parents an empty
     input instead of letting them process (then discard) a large
     partial intermediate.  This is what bounds cancellation latency:
     after the token trips mid-join, the plan unwinds without paying
     for filters/projections over millions of doomed rows. *)
  match ctx.budget with
  | Some b when Budget.exhausted b -> Relation.of_array (Relation.schema rel) [||]
  | _ -> rel

(* ---- uncorrelated subqueries ----

   Subquery expressions are resolved when the node holding them is
   evaluated: the subquery is planned and run against the catalog's
   base tables, and its result replaces the expression (a value list
   for IN, a boolean for EXISTS, a scalar for value subqueries).
   Correlated references fail inside the subquery's own planning with
   an unbound-column error. *)

and eval_subquery ctx (q : Sql.Ast.query) : Relation.t =
  let env : Planner.env =
    {
      schema_of =
        (fun name ->
          match ctx.catalog.relation name with
          | rel -> Some (Relation.schema rel)
          | exception Not_found -> None);
      stats_of = (fun _ -> None);
      has_index = (fun table attr -> ctx.catalog.index table attr <> None);
    }
  in
  let plan =
    try Planner.plan env q
    with Planner.Plan_error msg -> exec_errorf "in subquery: %s" msg
  in
  run_hooked { ctx with hook = (fun _ f -> f ()); fuse = true } plan

and scalar_of_subquery ctx q =
  let rel = eval_subquery ctx q in
  if Schema.arity (Relation.schema rel) <> 1 then
    exec_errorf "scalar subquery must return one column";
  match Relation.cardinality rel with
  | 0 -> Value.Null
  | 1 -> (Relation.get rel 0).(0)
  | n -> exec_errorf "scalar subquery returned %d rows" n

and resolve_expr ctx (e : Sql.Ast.expr) : Sql.Ast.expr =
  let go = resolve_expr ctx in
  match e with
  | In_query (x, q) ->
    let rel = eval_subquery ctx q in
    if Schema.arity (Relation.schema rel) <> 1 then
      exec_errorf "IN subquery must return one column";
    let values =
      Relation.fold
        (fun acc row -> if Value.is_null row.(0) then acc else row.(0) :: acc)
        [] rel
    in
    In_list (go x, List.rev values)
  | Exists q ->
    Lit (Value.Bool (not (Relation.is_empty (eval_subquery ctx q))))
  | Scalar_subquery q -> Lit (scalar_of_subquery ctx q)
  | Lit _ | Col _ | Agg (_, None) -> e
  | Agg (f, Some a) -> Agg (f, Some (go a))
  | Unop (op, a) -> Unop (op, go a)
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Like (a, p) -> Like (go a, p)
  | Not_like (a, p) -> Not_like (go a, p)
  | In_list (a, vs) -> In_list (go a, vs)
  | Between (a, b, c) -> Between (go a, go b, go c)
  | Is_null a -> Is_null (go a)
  | Is_not_null a -> Is_not_null (go a)

and resolve_if_needed ctx e =
  if Sql.Ast.has_subqueries e then resolve_expr ctx e else e

and resolve_node ctx (plan : Plan.t) : Plan.t =
  let r = resolve_if_needed ctx in
  match plan with
  | Scan _ | Distinct _ | Limit _ -> plan
  | Filter { input; pred } -> Filter { input; pred = r pred }
  | Project { input; items } ->
    Project { input; items = List.map (fun (e, n) -> (r e, n)) items }
  | Hash_join { left; right; left_keys; right_keys } ->
    Hash_join
      {
        left;
        right;
        left_keys = List.map r left_keys;
        right_keys = List.map r right_keys;
      }
  | Index_join j -> Index_join { j with left_keys = List.map r j.left_keys }
  | Left_outer_join { left; right; on } ->
    Left_outer_join { left; right; on = r on }
  | Cross _ -> plan
  | Aggregate { input; group_by; items; having } ->
    Aggregate
      {
        input;
        group_by = List.map r group_by;
        items = List.map (fun (e, n) -> (r e, n)) items;
        having = Option.map r having;
      }
  | Sort { input; keys } ->
    Sort { input; keys = List.map (fun (e, d) -> (r e, d)) keys }

(* the columnar input of a chunked operator: a fused chunk-friendly
   subtree evaluates column-to-column; anything else goes through the
   row interpreter (keeping per-node hooks, spans, and budget
   boundaries) and is pivoted at the operator's edge *)
and input_ctable ctx (input : Plan.t) : ctable =
  if can_fuse ctx && Plan.chunk_friendly input then eval_ctable ctx input
  else
    let cancel = region_cancel ctx.budget in
    ctable_of_relation ?cancel ~jobs:ctx.jobs (run_child ctx input)

and eval_ctable ctx (plan : Plan.t) : ctable =
  let cancel = region_cancel ctx.budget in
  match resolve_node ctx plan with
  | Scan { table; alias } ->
    let rel =
      try ctx.catalog.relation table
      with Not_found -> exec_errorf "unknown table %s" table
    in
    let schema = Schema.rename ~prefix:alias (Relation.schema rel) in
    ctable_of_relation ?cancel ~jobs:ctx.jobs
      (Relation.of_array schema (Relation.rows rel))
  | Filter { input; pred } ->
    chunked_filter ?cancel ~jobs:ctx.jobs (input_ctable ctx input) pred
  | Project { input; items } ->
    chunked_project ?cancel ~jobs:ctx.jobs (input_ctable ctx input) items
  | Hash_join { left; right; left_keys; right_keys } ->
    chunked_hash_join ?cancel ~jobs:ctx.jobs (input_ctable ctx left)
      (input_ctable ctx right) ~left_keys ~right_keys
  | Index_join _ | Left_outer_join _ | Cross _ | Aggregate _ | Sort _
  | Distinct _ | Limit _ ->
    (* [input_ctable] only routes chunk-friendly nodes here *)
    assert false

and eval ctx (plan : Plan.t) : Relation.t =
  let cancel = region_cancel ctx.budget in
  let budget = ctx.budget and jobs = ctx.jobs in
  match plan with
  | Scan { table; alias } ->
    let rel =
      try ctx.catalog.relation table
      with Not_found -> exec_errorf "unknown table %s" table
    in
    let schema = Schema.rename ~prefix:alias (Relation.schema rel) in
    Relation.of_array schema (Relation.rows rel)
  | Filter { input; pred } ->
    if ctx.chunked then
      relation_of_ctable ?cancel ~jobs
        (chunked_filter ?cancel ~jobs (input_ctable ctx input) pred)
    else
      let rel = run_child ctx input in
      run_filter ?cancel ~jobs (predicate (Relation.schema rel) pred) rel
  | Project { input; items } ->
    if ctx.chunked then
      relation_of_ctable ?cancel ~jobs
        (chunked_project ?cancel ~jobs (input_ctable ctx input) items)
    else begin
      let rel = run_child ctx input in
      let schema = Relation.schema rel in
      let fns = List.map (fun (e, _) -> compile schema e) items in
      let rows =
        run_map_rows ?cancel ~jobs
          (fun row -> Array.of_list (List.map (fun f -> f row) fns))
          rel
      in
      Relation.create (infer_schema (List.map snd items) rows) rows
    end
  | Hash_join { left; right; left_keys; right_keys } -> (
    (* with a budget the join stays on the serial row path: rows are
       charged as they are emitted, and the Truncate prefix is defined
       by that per-row order *)
    match ctx.spill with
    | Some sp ->
      (* spill-eligible executions materialize both sides first (the
         threshold needs the build cardinality); below the threshold
         the ordinary row join runs over them *)
      let lrel = run_child ctx left and rrel = run_child ctx right in
      if Relation.cardinality rrel >= sp.spill_rows then
        run_spill_hash_join ?budget ~spill:sp lrel rrel ~left_keys ~right_keys
      else run_hash_join ?budget ~jobs lrel rrel ~left_keys ~right_keys
    | None ->
      if ctx.chunked && Option.is_none budget then
        relation_of_ctable ?cancel ~jobs
          (chunked_hash_join ?cancel ~jobs (input_ctable ctx left)
             (input_ctable ctx right) ~left_keys ~right_keys)
      else
        run_hash_join ?budget ~jobs (run_child ctx left) (run_child ctx right)
          ~left_keys ~right_keys)
  | Left_outer_join { left; right; on } ->
    run_left_outer_join ?budget (run_child ctx left) (run_child ctx right) ~on
  | Index_join { left; table; alias; left_keys; right_attrs } -> (
    let base =
      try ctx.catalog.relation table
      with Not_found -> exec_errorf "unknown table %s" table
    in
    match right_attrs with
    | [] -> exec_errorf "index join with no key attributes"
    | first_attr :: other_attrs -> (
      match ctx.catalog.index table first_attr with
      | None -> exec_errorf "no index on %s.%s" table first_attr
      | Some index ->
        let lrel = run_child ctx left in
        let ls = Relation.schema lrel in
        let lf =
          match List.map (compile ls) left_keys with
          | [] -> exec_errorf "index join with no probe keys"
          | f :: fs -> (f, fs)
        in
        let other_idx =
          List.map (Schema.index_of (Relation.schema base)) other_attrs
        in
        let out_schema =
          Schema.append ls (Schema.rename ~prefix:alias (Relation.schema base))
        in
        let out = ref [] in
        (try
           Relation.iter
             (fun lrow ->
               let first_f, rest_f = lf in
               let probe = first_f lrow in
               if not (Value.is_null probe) then
                 List.iter
                   (fun i ->
                     let rrow = Relation.get base i in
                     (* residual equalities on the remaining key attrs *)
                     let rest_vals = List.map (fun f -> f lrow) rest_f in
                     let ok =
                       List.for_all2
                         (fun v j -> Value.equal v rrow.(j))
                         rest_vals other_idx
                     in
                     if ok then begin
                       tick budget;
                       out := Array.append lrow rrow :: !out
                     end)
                   (Index.lookup index probe))
             lrel
         with Budget_stop -> ());
        emit_result budget out_schema out))
  | Cross (a, b) ->
    let ra = run_child ctx a and rb = run_child ctx b in
    let schema = Schema.append (Relation.schema ra) (Relation.schema rb) in
    let out = ref [] in
    (try
       Relation.iter
         (fun rowa ->
           Relation.iter
             (fun rowb ->
               tick budget;
               out := Array.append rowa rowb :: !out)
             rb)
         ra
     with Budget_stop -> ());
    emit_result budget schema out
  | Aggregate { input; group_by; items; having } ->
    if ctx.chunked then
      chunked_aggregate ?cancel ~jobs (input_ctable ctx input) ~group_by ~items
        ~having
    else
      run_aggregate ?cancel ~jobs (run_child ctx input) ~group_by ~items ~having
  | Sort { input; keys } ->
    let rel = run_child ctx input in
    let schema = Relation.schema rel in
    let compiled = List.map (fun (e, desc) -> (compile schema e, desc)) keys in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (f, desc) :: rest ->
          let c = Value.compare (f a) (f b) in
          if c <> 0 then if desc then -c else c else go rest
      in
      go compiled
    in
    Relation.sort_by cmp rel
  | Distinct input -> Relation.distinct (run_child ctx input)
  | Limit (input, n) ->
    let rel = run_child ctx input in
    let keep = min n (Relation.cardinality rel) in
    Relation.of_array (Relation.schema rel)
      (Array.sub (Relation.rows rel) 0 keep)

let run ?budget ?(jobs = 1) ?(chunked = true) ?spill catalog plan =
  let ctx =
    { budget; jobs; hook = (fun _ f -> f ()); catalog; chunked; fuse = true;
      spill }
  in
  (* evaluation-time type errors surface as engine errors *)
  try run_hooked ctx plan with Expr.Type_error msg -> raise (Exec_error msg)

type profile = {
  operator : string;
  out_rows : int;
  elapsed : float;
  children : profile list;
}

let run_profiled ?budget ?(jobs = 1) ?(chunked = true) ?spill catalog plan =
  (* a stack of children accumulators: the hook pushes a frame before
     evaluating a node and folds the completed profile into the
     parent's frame afterwards.  Fusion stays off so every node keeps
     its own row boundary (and hence an accurate out_rows). *)
  let stack = ref [ [] ] in
  let hook node f =
    stack := [] :: !stack;
    let t0 = Unix.gettimeofday () in
    let rel = f () in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match !stack with
    | children :: parent :: rest ->
      let p =
        {
          operator = operator_label node;
          out_rows = Relation.cardinality rel;
          elapsed;
          children = List.rev children;
        }
      in
      stack := (p :: parent) :: rest
    | _ -> assert false);
    rel
  in
  let ctx = { budget; jobs; hook; catalog; chunked; fuse = false; spill } in
  let rel =
    try run_hooked ctx plan
    with Expr.Type_error msg -> raise (Exec_error msg)
  in
  match !stack with
  | [ [ root ] ] -> (rel, root)
  | _ -> raise (Exec_error "run_profiled: unbalanced profile stack")

let rec pp_profile_indent fmt indent p =
  Format.fprintf fmt "%s%s  rows=%d  time=%.3fms@\n"
    (String.make indent ' ')
    p.operator p.out_rows (p.elapsed *. 1000.0);
  List.iter (pp_profile_indent fmt (indent + 2)) p.children

let pp_profile fmt p = pp_profile_indent fmt 0 p
