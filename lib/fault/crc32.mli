(** CRC-32 (IEEE) checksums over strings.

    The store's integrity primitive: cheap, streamable, and strong
    enough against the failure modes persistence actually sees (torn
    writes, truncation, bit rot).  Not a cryptographic hash. *)

val string : string -> int
(** Checksum of a whole string. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum, so a file can be hashed
    chunk by chunk: [string (a ^ b) = update (string a) b]. *)

val to_hex : int -> string
(** Lower-case 8-digit hex rendering, the journal's on-disk form. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] on malformed input. *)
