(** Candidate databases (Dfns 3–5) and the exact possible-worlds
    oracle.

    A candidate database picks exactly one tuple from every cluster of
    every dirty relation; its probability is the product of the chosen
    tuples' probabilities.  Enumerating candidates is exponential in
    the number of clusters — this module is the specification-level
    oracle used to validate the rewriting and as the naive baseline in
    the benchmarks, not the production query path. *)

type selection
(** A choice of one tuple per cluster for every table. *)

val chosen_rows : selection -> string -> int list
(** Row indices (ascending) chosen for the named table. *)

val count : Dirty.Dirty_db.t -> float
(** Number of candidate databases (as a float; it overflows 63-bit
    integers quickly). *)

val fold :
  ?max_candidates:int ->
  Dirty.Dirty_db.t ->
  ('a -> selection -> float -> 'a) ->
  'a ->
  'a
(** Fold over every candidate database with its probability.
    @raise Invalid_argument when the candidate count exceeds
    [max_candidates] (default [1_000_000]). *)

val candidate_relations :
  Dirty.Dirty_db.t -> selection -> (string * Dirty.Relation.t) list
(** Materialize the candidate database: each table restricted to the
    chosen rows (identifier and probability columns retained). *)

val clean_answers :
  ?max_candidates:int ->
  Dirty.Dirty_db.t ->
  Sql.Ast.query ->
  Dirty.Relation.t
(** Clean answers by direct application of Dfn 5: run the query on
    every candidate database, collect the distinct answer tuples, and
    sum the probabilities of the candidates producing each.  The
    result relation extends the query's output schema with a
    [clean_prob] column and is sorted by the answer columns. *)

val probability_that_nonempty :
  ?max_candidates:int -> Dirty.Dirty_db.t -> Sql.Ast.query -> float
(** Probability mass of the candidates on which the query returns at
    least one row (used to answer boolean queries). *)
