(** Graceful-degradation repair of dirty tables.

    {!Validate} reports what is wrong; this module fixes it, cluster by
    cluster, under an explicit policy, so that a dirty load can proceed
    with a report of what was repaired instead of aborting.

    Policies act on the clusters that carry [Error]-severity
    diagnostics ([Warning]s — zero probabilities, duplicate tuples —
    are preserved untouched):

    - [Renormalize]: divide every probability of the cluster by the
      cluster sum.  Requires every probability to be numeric, finite
      and non-negative with a positive sum; when those preconditions
      fail the cluster degrades to [Uniform_fallback] (recorded in the
      action note).
    - [Clamp_and_renormalize]: coerce non-numeric and NaN probabilities
      to 0, clamp into [0,1], then renormalize (uniform when the
      clamped sum is 0).
    - [Uniform_fallback]: give every tuple of the cluster probability
      1/n, discarding the recorded values.
    - [Drop_cluster]: delete the cluster's tuples entirely.
    - [Fail]: raise {!Repair_failed} — the strict behaviour of
      {!Dirty_db.make_table}, but with a structured diagnostic.

    For {!Validate.Dangling_reference} diagnostics (database level),
    [Drop_cluster] deletes the referencing cluster, [Fail] raises, and
    every other policy nulls the dangling foreign-key value (the
    convention {!Dirty_db.propagate} uses for unmatched keys).

    A repaired database always passes {!Validate} with no
    [Error]-severity diagnostics (missing designated columns excepted:
    those are structural and raise {!Repair_failed} under every
    policy). *)

type policy =
  | Renormalize
  | Uniform_fallback
  | Clamp_and_renormalize
  | Drop_cluster
  | Fail

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** Parses the kebab-case names used by the CLI: ["renormalize"],
    ["uniform"], ["clamp"], ["drop"], ["fail"]. *)

(** What was done to one cluster (or foreign-key row). *)
type action = {
  a_table : string;
  a_cluster : Value.t;
  a_policy : policy;  (** the policy actually applied *)
  a_note : string;  (** human-readable description of the change *)
}

val action_to_string : action -> string

exception Repair_failed of Validate.diagnostic
(** Raised under the [Fail] policy, and for structural problems
    (missing identifier/probability columns) no policy can fix. *)

val repair_table :
  ?policy_for:(Validate.diagnostic -> policy option) ->
  policy:policy ->
  Dirty_db.table ->
  Dirty_db.table * action list
(** Repair every cluster carrying error diagnostics.  [policy_for]
    overrides the default [policy] per diagnostic (return [None] to
    use the default); when a cluster's diagnostics select several
    policies the most conservative one wins
    ([Fail > Drop_cluster > Uniform_fallback > Clamp_and_renormalize >
    Renormalize]).
    @raise Repair_failed as described above. *)

val repair_db :
  ?references:Validate.reference list ->
  ?policy_for:(Validate.diagnostic -> policy option) ->
  policy:policy ->
  Dirty_db.t ->
  Dirty_db.t * action list
(** Repair every table, then repair dangling references (checked
    against the already-repaired tables).
    @raise Repair_failed as {!repair_table}. *)
