test/test_properties.ml: Alcotest Array Buffer Cluster Conquer Dirty Dirty_db Engine Float Format Fun Infotheory List Option Printf Prob QCheck QCheck_alcotest Relation Schema Sql Value
