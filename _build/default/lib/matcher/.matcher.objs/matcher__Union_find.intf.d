lib/matcher/union_find.mli: Dirty
