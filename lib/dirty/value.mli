(** Typed SQL values.

    The engine manipulates dynamically typed values drawn from a small
    set of SQL-like types.  [Null] follows a simplified SQL semantics:
    it compares equal to itself for grouping purposes ([compare]) but
    all arithmetic involving [Null] yields [Null], and comparison
    predicates on [Null] are false (see {!Engine.Expr}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since 1970-01-01; a separate type so that date
                     literals pretty-print back as dates *)

type ty = TBool | TInt | TFloat | TString | TDate

(** {1 Classification} *)

val type_of : t -> ty option
(** [type_of v] is [None] for [Null]. *)

val ty_name : ty -> string

val is_null : t -> bool

(** {1 Ordering and equality} *)

val compare : t -> t -> int
(** Total order used for sorting and grouping.  [Null] sorts first;
    ints and floats compare numerically with each other — exactly,
    without rounding the int to float, so distinct ints above 2{^53}
    never collapse onto the same float and the order stays transitive;
    values of incomparable types are ordered by their type tag so that
    the order stays total. *)

val equal : t -> t -> bool

val hash : t -> int
(** Consistent with [equal] (numeric values hash by their float
    image). *)

val hash_float : float -> int
(** The float image {!hash} uses for [Float] values, exposed for
    columnar kernels that hash unboxed float columns.  Agrees with
    [compare]'s equality classes: [-0.0] hashes like [0.0], and every
    NaN payload hashes to the same bucket. *)

val hash_int : int -> int
(** The image {!hash} uses for [Int] values ([hash_float] of the
    int's float image, so [Int 2] and [Float 2.0] share a bucket). *)

val compare_int_float : int -> float -> int
(** Exact numeric comparison of an int against a float (no rounding
    of the int through float), as used by {!compare} on mixed
    [Int]/[Float] operands.  Exposed for columnar comparison
    kernels. *)

(** {1 Numeric coercion} *)

val to_float : t -> float option
val to_int : t -> int option

(** {1 Date support} *)

val date_of_string : string -> t
(** Parse ["YYYY-MM-DD"] into [Date]. @raise Invalid_argument on bad
    syntax. *)

val string_of_date : int -> string

(** {1 Parsing and printing} *)

val parse : string -> t
(** Best-effort parse used by the CSV loader: integers, then floats,
    then dates, then booleans, empty string as [Null], anything else
    as [String]. *)

val to_string : t -> string
(** Display form ([Null] prints as ["NULL"], dates as
    ["YYYY-MM-DD"]). *)

val to_sql : t -> string
(** SQL literal form (strings quoted with escaping, dates as
    [DATE 'YYYY-MM-DD']). *)

val pp : Format.formatter -> t -> unit
