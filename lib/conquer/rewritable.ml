type violation =
  | Not_spj of string
  | Unknown_dirty_table of string
  | Join_without_identifier of Sql.Ast.expr
  | Non_equality_join of Sql.Ast.expr
  | Graph_not_tree of { roots : string list }
  | Repeated_relation of string
  | Root_identifier_not_selected of { root : string; id_attr : string }
  | Unresolved_column of string

let violation_to_string = function
  | Not_spj why -> "query is not select-project-join: " ^ why
  | Unknown_dirty_table t -> "relation " ^ t ^ " is not a known dirty table"
  | Join_without_identifier e ->
    "join does not involve an identifier: " ^ Sql.Pretty.expr_to_string e
  | Non_equality_join e ->
    "cross-relation predicate is not a column equality: "
    ^ Sql.Pretty.expr_to_string e
  | Graph_not_tree { roots } ->
    "join graph is not a tree (roots: " ^ String.concat ", " roots ^ ")"
  | Repeated_relation t -> "relation " ^ t ^ " appears more than once (self-join)"
  | Root_identifier_not_selected { root; id_attr } ->
    Printf.sprintf "identifier %s.%s of the join-graph root is not selected" root
      id_attr
  | Unresolved_column msg -> msg

(* Is the ORDER BY key one of the selected columns?  It survives the
   rewriting's added GROUP BY iff it names a select item: structurally
   equal to the item's expression, or a bare name matching the item's
   alias or selected column name. *)
let order_key_selected (items : Sql.Ast.select_item list)
    (o : Sql.Ast.order_item) =
  List.exists
    (fun (i : Sql.Ast.select_item) ->
      i.expr = o.o_expr
      ||
      match o.o_expr with
      | Col { table = None; name } -> (
        i.alias = Some name
        || match i.expr with Col { name = n; _ } -> n = name | _ -> false)
      | _ -> false)
    items

let spj_violation (q : Sql.Ast.query) =
  if q.distinct then Some "DISTINCT present"
  else if q.outer_joins <> [] then Some "outer join present"
  else if Sql.Ast.query_has_subqueries q then Some "subquery present"
  else if q.group_by <> [] then Some "GROUP BY present"
  else if q.having <> None then Some "HAVING present"
  else if q.select = Sql.Ast.Star then
    (* the rewriting needs an explicit attribute list to group by *)
    Some "SELECT * present (list the attributes explicitly)"
  else if
    (* the rewriting wraps the query in GROUP BY: an ORDER BY key
       survives only if it is one of the grouped (selected) columns *)
    List.exists
      (fun (o : Sql.Ast.order_item) ->
        match q.select with
        | Star -> false
        | Items items -> not (order_key_selected items o))
      q.order_by
  then Some "ORDER BY key not in the select list"
  else if q.limit <> None then
    (* LIMIT truncates per candidate; applied after the grouped
       rewriting it would truncate the set of clean answers instead *)
    Some "LIMIT present"
  else
    let has_agg =
      (match q.select with
      | Star -> false
      | Items items -> List.exists (fun (i : Sql.Ast.select_item) -> Sql.Ast.has_aggregates i.expr) items)
      || Option.fold ~none:false ~some:Sql.Ast.has_aggregates q.where
    in
    if has_agg then Some "aggregate expression present" else None

(* Does the select clause contain the identifier of [alias]?  A
   qualified reference must match the alias; an unqualified one
   matches when the name is the identifier attribute. *)
let selects_identifier (q : Sql.Ast.query) ~alias ~id_attr =
  match q.select with
  | Star -> true
  | Items items ->
    List.exists
      (fun (i : Sql.Ast.select_item) ->
        match i.expr with
        | Col { table = Some t; name } -> t = alias && name = id_attr
        | Col { table = None; name } -> name = id_attr
        | _ -> false)
      items

let check env (q : Sql.Ast.query) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (match spj_violation q with Some why -> add (Not_spj why) | None -> ());
  (* dirty metadata known for every relation *)
  List.iter
    (fun (r : Sql.Ast.table_ref) ->
      match env.Dirty_schema.info_of r.table with
      | Some _ -> ()
      | None -> add (Unknown_dirty_table r.table))
    q.from;
  (* condition 3: no repeated relation *)
  let tables = List.map (fun (r : Sql.Ast.table_ref) -> r.table) q.from in
  let rec dup = function
    | [] -> ()
    | t :: rest -> (
      if List.mem t rest then add (Repeated_relation t);
      dup (List.filter (fun x -> x <> t) rest))
  in
  dup tables;
  match Join_graph.build env q with
  | exception Join_graph.Unresolved msg ->
    Error (List.rev (Unresolved_column msg :: !violations))
  | graph ->
    List.iter
      (fun (e, kind) ->
        match (kind : Join_graph.join_kind) with
        | Non_id_join _ -> add (Join_without_identifier e)
        | Fk_join _ | Id_id_join _ -> ())
      graph.joins;
    List.iter (fun e -> add (Non_equality_join e)) graph.non_equality;
    if not (Join_graph.is_tree graph) then
      add (Graph_not_tree { roots = Join_graph.roots graph })
    else begin
      let root =
        match Join_graph.roots graph with [ r ] -> r | _ -> assert false
      in
      let root_table =
        List.find_map
          (fun (r : Sql.Ast.table_ref) ->
            let alias = Option.value ~default:r.table r.t_alias in
            if alias = root then Some r.table else None)
          q.from
      in
      match Option.bind root_table env.Dirty_schema.info_of with
      | None -> ()  (* already reported as Unknown_dirty_table *)
      | Some { id_attr; _ } ->
        if not (selects_identifier q ~alias:root ~id_attr) then
          add (Root_identifier_not_selected { root; id_attr })
    end;
    (match !violations with
    | [] -> Ok graph
    | vs -> Error (List.rev vs))

let is_rewritable env q = Result.is_ok (check env q)

let root graph =
  if not (Join_graph.is_tree graph) then
    invalid_arg "Rewritable.root: join graph is not a tree"
  else match Join_graph.roots graph with
    | [ r ] -> r
    | _ -> assert false
