(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

   Used by Dirty.Store to checksum snapshot files: the journal records
   the CRC of every file's exact byte content, and load refuses a file
   whose bytes no longer hash to the recorded value.  CRC-32 is not
   cryptographic — it defends against torn writes, truncation and bit
   rot, which is the store's threat model — and it is cheap enough to
   run on every load. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let string s = update 0 s
let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)

let of_hex s =
  match int_of_string_opt ("0x" ^ s) with
  | Some v when v >= 0 && v <= 0xFFFFFFFF -> Some v
  | _ -> None
