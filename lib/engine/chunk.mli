(** Columnar batches for the chunk executor.

    A chunk holds up to {!default_rows} rows of a relation pivoted
    into columns.  A column is unboxed when every non-null cell in the
    batch shares one type tag — [int array] / [float array] / [bool
    array] / date [int array] / dictionary-coded strings — and falls
    back to a boxed [Value.t array] for mixed-type columns.  Null
    positions live in a side bitmap; the typed slot under a null holds
    a dummy value and is only meaningful through {!cell}.

    Chunk boundaries are a function of the data and of
    [!default_rows] only — never of the jobs count — which is what
    lets morsel-parallel operators stay bit-identical between jobs=1
    and jobs=N. *)

open Dirty

val default_rows : int ref
(** Rows per chunk when slicing a relation (default 2048).  Exposed
    so tests can shrink it and exercise multi-chunk paths on small
    inputs. *)

type data =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Dates of int array
  | Strings of { codes : int array; dict : string array }
      (** per-chunk dictionary; [codes.(i)] indexes [dict] *)
  | Boxed of Value.t array  (** mixed-type fallback *)

type col = { data : data; nulls : Bytes.t option }
(** [nulls = None] means no cell of the column is null. *)

type t = { length : int; cols : col array }

(** Null bitmaps: bit set = null.  [create n] is an all-clear bitmap
    for [n] positions. *)
module Bitmap : sig
  val create : int -> Bytes.t
  val set : Bytes.t -> int -> unit
  val get : Bytes.t -> int -> bool
end

val is_null : col -> int -> bool

val cell : col -> int -> Value.t
(** Re-box one cell ([Null] when the bitmap says so). *)

val row : t -> int -> Value.t array
(** Materialize one row (fresh array). *)

val col_of_values : Value.t array -> col
(** Pivot a boxed column into its tightest representation.  Takes
    ownership of the array (it may be kept as the [Boxed] backing). *)

val of_rows : Value.t array array -> lo:int -> len:int -> arity:int -> t
(** Extract rows [lo .. lo+len-1] into a chunk of [arity] columns. *)

val const : int -> Value.t -> col
(** A broadcast literal column of the given length. *)

val blit_rows : t -> Value.t array array -> pos:int -> unit
(** Materialize the chunk's rows into [out] starting at [pos]. *)

val rows_of : t -> Value.t array array

val gather : t -> int array -> t
(** [gather t sel] is the chunk of rows [sel.(0), sel.(1), ...] of
    [t], in selection order — the filter/join output primitive.
    String dictionaries are shared, not rebuilt. *)

val concat : arity:int -> t array -> t
(** Flatten chunks into one batch (used to give the join build side
    O(1) row addressing).  Columns are re-classified, so chunks whose
    kinds disagree unify (possibly to [Boxed]). *)

val column_ty : t -> int -> Value.ty option
(** Type tag of the column's first non-null cell in row order, [None]
    if every cell is null — the per-chunk step of the executor's
    output schema inference. *)
