lib/matcher/similarity.ml: Array Dirty Float List Option Prob Relation Schema String Value
