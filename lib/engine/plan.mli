(** Logical/physical query plans.

    Plans are produced by {!Planner} and evaluated by {!Exec}.
    Expressions inside plan nodes are resolved against the node's
    input schema when the node is instantiated, not per row. *)

type t =
  | Scan of { table : string; alias : string }
      (** Base-table scan.  The output schema qualifies every
          attribute as ["alias.attribute"]. *)
  | Filter of { input : t; pred : Sql.Ast.expr }
  | Project of { input : t; items : (Sql.Ast.expr * string) list }
      (** Computes each expression; output attribute names are the
          given (unique) names. *)
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Sql.Ast.expr list;
      right_keys : Sql.Ast.expr list;
    }
      (** Equi-join; builds a hash table on the right input. *)
  | Index_join of {
      left : t;
      table : string;
      alias : string;
      left_keys : Sql.Ast.expr list;
      right_attrs : string list;
          (** unqualified attribute names of [table]; the first one
              must carry a persistent index *)
    }
      (** Probes a persistent index of the base table [table] instead
          of building a transient hash table. *)
  | Left_outer_join of {
      left : t;
      right : t;
      on : Sql.Ast.expr;
    }
      (** SQL LEFT OUTER JOIN: every left row is kept; right columns
          are NULL when no right row satisfies [on] (evaluated over
          the concatenated row).  The executor uses a hash path when
          [on] contains an equality splitting across the inputs. *)
  | Cross of t * t
  | Aggregate of {
      input : t;
      group_by : Sql.Ast.expr list;
      items : (Sql.Ast.expr * string) list;
      having : Sql.Ast.expr option;
    }
  | Sort of { input : t; keys : (Sql.Ast.expr * bool) list }
      (** [(expr, desc)] sort keys, leftmost major. *)
  | Distinct of t
  | Limit of t * int

val pp : Format.formatter -> t -> unit
(** EXPLAIN-style indented rendering. *)

val to_string : t -> string

val base_tables : t -> (string * string) list
(** [(table, alias)] pairs of all scans, left to right. *)

val chunk_friendly : t -> bool
(** True for nodes the chunked executor can evaluate
    column-to-column (Scan, Filter, Project, Hash_join); subtrees of
    such nodes fuse into a single columnar pipeline when the executor
    runs chunked with no budget and telemetry off. *)
