lib/prob/matrix.mli: Dirty Infotheory Interning
