(* Minimal HTTP/1.1 over Unix sockets: exactly what the query daemon
   needs and nothing else.  One request per connection, Content-Length
   framing only (no chunked uploads), bounded header/body sizes, and a
   receive timeout on every read so a slowloris client cannot pin a
   worker domain.  The same file also carries the tiny blocking client
   the tests and the load-generator bench drive the daemon with. *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

exception Bad_request of string
exception Too_large of string
exception Timeout
exception Disconnected

let max_header_bytes = 8 * 1024
let max_body_bytes = 1024 * 1024

(* ---- small lexical helpers ---- *)

let lowercase = String.lowercase_ascii

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* %XX and '+' decoding for paths and query strings; malformed escapes
   pass through verbatim rather than failing the whole request *)
let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
      match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char buf (Char.chr ((hi * 16) + lo));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query_string qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
               Some
                 ( percent_decode (String.sub pair 0 i),
                   percent_decode
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query_string (String.sub target (i + 1) (String.length target - i - 1))
    )

(* ---- socket reads ---- *)

let set_read_timeout fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ -> ()

(* one recv; maps the failure modes onto the typed exceptions *)
let recv_chunk fd bytes =
  match Unix.read fd bytes 0 (Bytes.length bytes) with
  | 0 -> raise Disconnected
  | n -> n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Timeout
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
    raise Disconnected
  | exception Unix.Unix_error (EINTR, _, _) -> 0

let find_header_end s len =
  (* index just past "\r\n\r\n", scanning only the valid prefix *)
  let rec go i =
    if i + 3 >= len then None
    else if
      Bytes.get s i = '\r'
      && Bytes.get s (i + 1) = '\n'
      && Bytes.get s (i + 2) = '\r'
      && Bytes.get s (i + 3) = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let parse_headers lines =
  List.map
    (fun line ->
      match String.index_opt line ':' with
      | None -> raise (Bad_request ("malformed header: " ^ line))
      | Some i ->
        ( lowercase (String.trim (String.sub line 0 i)),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
    lines

let header req name =
  List.assoc_opt (lowercase name) req.headers

let param req name = List.assoc_opt name req.query

let read_request ?(read_timeout = 5.0) fd =
  set_read_timeout fd read_timeout;
  let buf = Bytes.create max_header_bytes in
  let filled = ref 0 in
  let head_end = ref None in
  while !head_end = None do
    if !filled >= max_header_bytes then
      raise (Too_large "header block over 8KiB");
    let chunk = Bytes.create (max_header_bytes - !filled) in
    let n = recv_chunk fd chunk in
    Bytes.blit chunk 0 buf !filled n;
    filled := !filled + n;
    head_end := find_header_end buf !filled
  done;
  let head_end = Option.get !head_end in
  let head = Bytes.sub_string buf 0 (head_end - 4) in
  let lines = String.split_on_char '\n' head |> List.map (fun l ->
      match String.length l with
      | 0 -> l
      | n when l.[n - 1] = '\r' -> String.sub l 0 (n - 1)
      | _ -> l)
  in
  let request_line, header_lines =
    match lines with
    | [] -> raise (Bad_request "empty request")
    | rl :: hs -> (rl, List.filter (fun l -> l <> "") hs)
  in
  let meth, target =
    match String.split_on_char ' ' request_line with
    | [ meth; target; version ]
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      (String.uppercase_ascii meth, target)
    | _ -> raise (Bad_request ("malformed request line: " ^ request_line))
  in
  let headers = parse_headers header_lines in
  let content_length =
    match List.assoc_opt "content-length" headers with
    | None -> 0
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | _ -> raise (Bad_request ("bad content-length: " ^ v)))
  in
  if List.assoc_opt "transfer-encoding" headers <> None then
    raise (Bad_request "chunked requests are not supported");
  if content_length > max_body_bytes then
    raise (Too_large "body over 1MiB");
  let body = Buffer.create content_length in
  Buffer.add_subbytes body buf head_end (!filled - head_end);
  while Buffer.length body < content_length do
    let chunk = Bytes.create (content_length - Buffer.length body) in
    let n = recv_chunk fd chunk in
    Buffer.add_subbytes body chunk 0 n
  done;
  let body = Buffer.contents body in
  let body =
    if String.length body > content_length then
      String.sub body 0 content_length
    else body
  in
  let path, query = split_target target in
  { meth; path; query; headers; body }

(* ---- responses ---- *)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c >= 200 && c < 300 then "OK" else "Error"

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      raise Disconnected
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let write_response fd ~status ?(headers = []) ?(content_type = "application/json")
    ~body () =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  Buffer.add_string buf (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string buf "connection: close\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

(* ---- client ---- *)

type response = {
  status : int;
  r_headers : (string * string) list;
  r_body : string;
}

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      Buffer.contents buf
  in
  go ()

let parse_response raw =
  match String.index_opt raw '\n' with
  | None -> raise Disconnected
  | Some _ -> (
    let head, body =
      let rec find i =
        if i + 3 >= String.length raw then raise Disconnected
        else if String.sub raw i 4 = "\r\n\r\n" then
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        else find (i + 1)
      in
      find 0
    in
    match String.split_on_char '\n' head with
    | [] -> raise Disconnected
    | status_line :: header_lines ->
      let status =
        match String.split_on_char ' ' (String.trim status_line) with
        | _ :: code :: _ -> (
          match int_of_string_opt code with
          | Some c -> c
          | None -> raise Disconnected)
        | _ -> raise Disconnected
      in
      let r_headers =
        parse_headers
          (List.filter_map
             (fun l ->
               let l = String.trim l in
               if l = "" then None else Some l)
             header_lines)
      in
      { status; r_headers; r_body = body })

let request ~host ~port ?meth ?(headers = []) ?body ?(timeout = 30.0) target =
  let meth =
    match (meth, body) with
    | Some m, _ -> m
    | None, Some _ -> "POST"
    | None, None -> "GET"
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      set_read_timeout fd timeout;
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
       with Unix.Unix_error _ -> ());
      Unix.connect fd addr;
      let body_s = Option.value body ~default:"" in
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nhost: %s:%d\r\ncontent-length: %d\r\nconnection: close\r\n%s\r\n%s"
          meth target host port (String.length body_s) extra body_s
      in
      write_all fd req;
      parse_response (read_to_eof fd))
