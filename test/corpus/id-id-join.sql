SELECT r0.id, r1.v0
FROM t0 r0, t1 r1
WHERE r0.id = r1.id
