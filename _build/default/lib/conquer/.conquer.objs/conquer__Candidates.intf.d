lib/conquer/candidates.mli: Dirty Sql
