open Dirty

type stop = Num_clusters of int | Max_loss of float

type config = { attrs : string list; stop : stop }

type state = {
  mutable dcf : Infotheory.Dcf.t;
  mutable members : int list;  (* rows, ascending *)
  mutable alive : bool;
  lowest : int;
}

let m_dcf_merges =
  Telemetry.Metrics.counter "matcher.limbo.dcf_merges"
    ~help:"cluster pairs merged during agglomeration"

let m_distance_evals =
  Telemetry.Metrics.counter "matcher.limbo.distance_evals"
    ~help:"information-loss evaluations in the best-pair search"

(* run the agglomeration, invoking [on_merge] for every merge *)
let agglomerate config rel ~on_merge =
  Telemetry.Span.with_ ~name:"matcher.limbo.agglomerate"
    ~attrs:[ ("rows", string_of_int (Dirty.Relation.cardinality rel)) ]
  @@ fun () ->
  let matrix = Prob.Matrix.of_relation ~attrs:config.attrs rel in
  let n = Prob.Matrix.num_rows matrix in
  let total = float_of_int (max n 1) in
  let states =
    Array.init n (fun i ->
        { dcf = Prob.Matrix.row_dcf matrix i; members = [ i ]; alive = true; lowest = i })
  in
  let alive = ref n in
  let target =
    match config.stop with Num_clusters k -> max 1 k | Max_loss _ -> 1
  in
  let continue = ref (n > 1) in
  while !continue && !alive > target do
    (* cheapest merge among alive cluster pairs *)
    let best = ref None in
    for i = 0 to n - 1 do
      if states.(i).alive then
        for j = i + 1 to n - 1 do
          if states.(j).alive then begin
            Telemetry.Metrics.inc m_distance_evals;
            let loss =
              Infotheory.Dcf.information_loss ~total states.(i).dcf states.(j).dcf
            in
            match !best with
            | Some (_, _, l) when l <= loss -> ()
            | _ -> best := Some (i, j, loss)
          end
        done
    done;
    match !best with
    | None -> continue := false
    | Some (i, j, loss) ->
      let stop_now =
        match config.stop with Max_loss phi -> loss > phi | Num_clusters _ -> false
      in
      if stop_now then continue := false
      else begin
        Telemetry.Metrics.inc m_dcf_merges;
        on_merge states.(i).lowest states.(j).lowest loss;
        states.(i).dcf <- Infotheory.Dcf.merge states.(i).dcf states.(j).dcf;
        states.(i).members <-
          List.merge Int.compare states.(i).members states.(j).members;
        states.(j).alive <- false;
        decr alive
      end
  done;
  states

let cluster_of_states states =
  let n = Array.length states in
  let owner = Array.make n 0 in
  Array.iter
    (fun s ->
      if s.alive then List.iter (fun row -> owner.(row) <- s.lowest) s.members)
    states;
  Cluster.of_assignment ~size:n (fun i -> Value.Int owner.(i))

let run config rel =
  let states = agglomerate config rel ~on_merge:(fun _ _ _ -> ()) in
  cluster_of_states states

let merge_trace config rel =
  let trace = ref [] in
  let _ =
    agglomerate config rel ~on_merge:(fun a b loss -> trace := (a, b, loss) :: !trace)
  in
  List.rev !trace
