examples/quickstart.ml: Conquer Dirty Fun List Printf
