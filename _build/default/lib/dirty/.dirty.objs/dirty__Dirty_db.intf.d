lib/dirty/dirty_db.mli: Cluster Relation Value
