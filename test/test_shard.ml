(* Cluster-sharded execution (Engine.Shard, ROADMAP item 5).

   Covers every layer of the scatter/gather boundary in isolation —
   cluster-whole partitioning, the overlay catalog trick, the
   serializable fragment and partial codecs, plan_query's shardable
   class, and the gather merge — plus end-to-end agreement between
   sharded and unsharded execution at several shard counts.

   The merge properties pin the two determinism claims DESIGN makes:
   merged partial SUM/COUNT groups preserve first-occurrence order
   and are exact for int aggregates at any shard count; float sums on
   the sixteenths grid (every probability dbgen emits is a multiple
   of 1/16, a dyadic rational) are bit-equal to a single-shard run
   under any association.

   The last section is the ROADMAP item 1b regression: chunked
   aggregation is group-hash-partitioned, so each group's accumulator
   sees its rows in row order regardless of morsel boundaries — row
   and chunked executors must agree bit for bit even on off-grid
   floats and thousands of groups. *)

open Dirty

let v_i i = Value.Int i
let v_f f = Value.Float f

(* ---- fixtures: a small two-table dirty database ---- *)

(* t0: 12 clusters, two alternatives each (0.5/0.5) — 24 rows.
   t1: 6 singleton clusters referencing t0 ids through fk — 6 rows.
   t0 is strictly larger, so joins partition on t0. *)
let dirty_db () =
  let t0 =
    Dirty_db.make_table ~name:"t0" ~id_attr:"id" ~prob_attr:"prob"
      (Relation.create
         (Schema.make
            [ ("id", Value.TInt); ("v", Value.TInt); ("prob", Value.TFloat) ])
         (List.concat_map
            (fun i ->
              [
                [| v_i i; v_i (i mod 5); v_f 0.5 |];
                [| v_i i; v_i ((i + 1) mod 5); v_f 0.5 |];
              ])
            (List.init 12 Fun.id)))
  in
  let t1 =
    Dirty_db.make_table ~name:"t1" ~id_attr:"id" ~prob_attr:"prob"
      (Relation.create
         (Schema.make
            [
              ("id", Value.TInt);
              ("fk", Value.TInt);
              ("w", Value.TInt);
              ("prob", Value.TFloat);
            ])
         (List.init 6 (fun j ->
              [| v_i (100 + j); v_i (j * 2); v_i ((j * 7) - 3); v_f 1.0 |])))
  in
  Dirty_db.add_table (Dirty_db.add_table Dirty_db.empty t0) t1

let base_of dirty =
  let db = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation db ~name:t.name t.relation;
      Engine.Database.create_index db ~table:t.name ~attr:t.id_attr;
      Engine.Database.analyze db t.name)
    (Dirty_db.tables dirty);
  db

let session ?(shards = 2) () =
  let dirty = dirty_db () in
  Engine.Shard.create ~base:(base_of dirty) ~shards dirty

let parse = Sql.Parser.parse_query

(* exact cell equality, floats bit for bit *)
let check_cell msg expected actual =
  match (expected, actual) with
  | Value.Float a, Value.Float b ->
    (* bit-exact, except NaN payloads (the text codec canonicalizes
       "nan", and Value.compare treats all NaNs alike anyway) *)
    if
      Int64.bits_of_float a <> Int64.bits_of_float b
      && not (Float.is_nan a && Float.is_nan b)
    then Alcotest.failf "%s: float %h <> %h (bitwise)" msg a b
  | _ ->
    if not (Value.equal expected actual) then
      Alcotest.failf "%s: %s <> %s" msg
        (Value.to_string expected) (Value.to_string actual)

let check_rows msg expected actual =
  Alcotest.(check int) (msg ^ ": cardinality") (Array.length expected)
    (Array.length actual);
  Array.iteri
    (fun i row ->
      Alcotest.(check int)
        (Printf.sprintf "%s: row %d arity" msg i)
        (Array.length row)
        (Array.length actual.(i));
      Array.iteri
        (fun j v ->
          check_cell (Printf.sprintf "%s: row %d col %d" msg i j) v
            actual.(i).(j))
        row)
    expected

let check_same_relation msg expected actual =
  Alcotest.(check (list string))
    (msg ^ ": schema")
    (Schema.names (Relation.schema expected))
    (Schema.names (Relation.schema actual));
  check_rows msg (Relation.rows expected) (Relation.rows actual)

(* bag equality: same schema, same rows up to order *)
let check_same_bag msg expected actual =
  let sort rel =
    let rows = Array.copy (Relation.rows rel) in
    Array.sort
      (fun a b ->
        let n = compare (Array.length a) (Array.length b) in
        if n <> 0 then n
        else
          let rec go i =
            if i = Array.length a then 0
            else
              let c = Value.compare a.(i) b.(i) in
              if c <> 0 then c
              else
                (* order bit patterns too so NaN/-0.0 rows sort stably *)
                let c =
                  match (a.(i), b.(i)) with
                  | Value.Float x, Value.Float y ->
                    Int64.compare (Int64.bits_of_float x)
                      (Int64.bits_of_float y)
                  | _ -> 0
                in
                if c <> 0 then c else go (i + 1)
          in
          go 0)
      rows;
    rows
  in
  Alcotest.(check (list string))
    (msg ^ ": schema")
    (Schema.names (Relation.schema expected))
    (Schema.names (Relation.schema actual));
  check_rows msg (sort expected) (sort actual)

(* ---- cluster-hash partitioning ---- *)

let test_partition_clusters_whole () =
  let dirty = dirty_db () in
  List.iter
    (fun shards ->
      let frags = Dirty_db.partition dirty ~shards in
      Alcotest.(check int) "fragment count" shards (Array.length frags);
      List.iter
        (fun name ->
          let whole = (Dirty_db.find_table dirty name).relation in
          let total = ref 0 in
          Array.iteri
            (fun s frag ->
              match Dirty_db.find_table_opt frag name with
              | None -> ()
              | Some t ->
                total := !total + Relation.cardinality t.relation;
                Relation.rows t.relation
                |> Array.iter (fun row ->
                       let id = row.(0) in
                       Alcotest.(check int)
                         (Printf.sprintf "%s id %s on its shard" name
                            (Value.to_string id))
                         s
                         (Dirty_db.shard_of_value ~shards id)))
            frags;
          Alcotest.(check int)
            (Printf.sprintf "%s rows conserved at %d shards" name shards)
            (Relation.cardinality whole) !total;
          (* row order is preserved within each fragment: filtering the
             whole table by shard must reproduce the fragment exactly *)
          Array.iteri
            (fun s frag ->
              match Dirty_db.find_table_opt frag name with
              | None -> ()
              | Some t ->
                let expected =
                  Relation.rows whole |> Array.to_list
                  |> List.filter (fun row ->
                         Dirty_db.shard_of_value ~shards row.(0) = s)
                  |> Array.of_list
                in
                check_rows
                  (Printf.sprintf "%s shard %d order" name s)
                  expected
                  (Relation.rows t.relation))
            frags)
        (Dirty_db.table_names dirty))
    [ 1; 2; 4; 8 ]

let test_create_rejects_bad_shards () =
  let dirty = dirty_db () in
  match Engine.Shard.create ~base:(base_of dirty) ~shards:0 dirty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards = 0 should be rejected"

(* ---- Database.overlay ---- *)

let test_overlay_swaps_one_table () =
  let base = Engine.Database.create () in
  let mk v =
    Relation.create (Schema.make [ ("x", Value.TInt) ]) [ [| v_i v |] ]
  in
  Engine.Database.add_relation base ~name:"a" (mk 1);
  Engine.Database.add_relation base ~name:"b" (mk 2);
  let other = Engine.Database.create () in
  Engine.Database.add_relation other ~name:"a" (mk 42);
  let view = Engine.Database.overlay base ~name:"a" ~from:other in
  let one sql db = (Engine.Database.query db sql |> Relation.get) 0 in
  check_cell "overlaid a" (v_i 42) (one "select a.x from a" view).(0);
  check_cell "shared b" (v_i 2) (one "select b.x from b" view).(0);
  check_cell "base a untouched" (v_i 1) (one "select a.x from a" base).(0)

(* ---- the serializable boundary ---- *)

let test_fragment_codec () =
  let s = session () in
  let q =
    parse
      "select t0.v, count(*), sum(t1.w) from t0, t1 where t1.fk = t0.id \
       group by t0.v having count(*) > 1 order by t0.v"
  in
  match Engine.Shard.plan_query s q with
  | None -> Alcotest.fail "aggregate join should be shardable"
  | Some plan ->
    let frag = Engine.Shard.plan_fragment plan in
    Alcotest.(check string) "partition table" "t0"
      (Engine.Shard.partition_table plan);
    Alcotest.(check string) "frag table" "t0" frag.Engine.Shard.frag_table;
    let back =
      Engine.Shard.fragment_of_string (Engine.Shard.fragment_to_string frag)
    in
    Alcotest.(check string) "table round-trips" frag.Engine.Shard.frag_table
      back.Engine.Shard.frag_table;
    Alcotest.(check string) "query round-trips"
      (Sql.Pretty.query_to_string frag.Engine.Shard.frag_query)
      (Sql.Pretty.query_to_string back.Engine.Shard.frag_query)

let test_partial_codec () =
  let rel =
    Relation.create
      (Schema.make
         [ ("__g0", Value.TString); ("__a0", Value.TFloat); ("__a1", Value.TInt) ])
      [
        [| Value.String "plain"; v_f 0.5; v_i 3 |];
        [| Value.String "comma, quote\" ;"; v_f (-0.0); v_i (-7) |];
        [| Value.Null; v_f Float.nan; Value.Null |];
        [| Value.String ""; v_f Float.infinity; v_i max_int |];
        [| Value.Bool true; v_f Float.neg_infinity; Value.Date 9131 |];
        [| Value.String "0x1.8p+1"; v_f 0x1.921fb54442d18p+1; v_i 0 |];
      ]
  in
  let back =
    Engine.Shard.partial_of_string (Engine.Shard.partial_to_string rel)
  in
  Alcotest.(check (list string))
    "names survive"
    (Schema.names (Relation.schema rel))
    (Schema.names (Relation.schema back));
  check_rows "cells survive bitwise" (Relation.rows rel) (Relation.rows back);
  (* and the empty partial *)
  let empty =
    Relation.create (Schema.make [ ("__c0", Value.TInt) ]) []
  in
  let back =
    Engine.Shard.partial_of_string (Engine.Shard.partial_to_string empty)
  in
  Alcotest.(check int) "empty partial" 0 (Relation.cardinality back)

(* ---- the shardable class ---- *)

let test_plan_fallbacks () =
  let s = session () in
  let refuses msg sql =
    match Engine.Shard.plan_query s (parse sql) with
    | None -> ()
    | Some _ -> Alcotest.failf "%s should not be shardable: %s" msg sql
  in
  refuses "LIMIT" "select t0.v from t0 limit 3";
  refuses "SELECT *" "select * from t0";
  refuses "subquery" "select t0.v from t0 where t0.v in (select t1.w from t1)";
  refuses "outer join" "select t0.v from t0 left join t1 on t1.fk = t0.id";
  refuses "AVG" "select t0.v, avg(t1.w) from t0, t1 where t1.fk = t0.id \
                 group by t0.v";
  refuses "DISTINCT aggregate" "select distinct t0.v from t0 group by t0.v";
  refuses "self join (no unique table)"
    "select a.v from t0 a, t0 b where a.id = b.id"

let test_partition_table_choice () =
  let s = session () in
  let table_of sql =
    match Engine.Shard.plan_query s (parse sql) with
    | None -> Alcotest.failf "should be shardable: %s" sql
    | Some p -> Engine.Shard.partition_table p
  in
  (* t0 (24 rows) beats t1 (6 rows) when both are in FROM *)
  Alcotest.(check string) "largest table wins" "t0"
    (table_of "select t1.w, t0.v from t1, t0 where t1.fk = t0.id");
  (* only table present is the only candidate *)
  Alcotest.(check string) "single table" "t1"
    (table_of "select t1.w from t1 where t1.w > 0")

(* ---- gather: merge_partials ---- *)

let partial_schema =
  Schema.make
    [ ("__g0", Value.TInt); ("__a0", Value.TInt); ("__a1", Value.TInt) ]

(* group (g, v) pairs into a SUM/COUNT partial, first-occurrence order *)
let partial_of_pairs pairs =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (g, v) ->
      match Hashtbl.find_opt tbl g with
      | None ->
        Hashtbl.add tbl g (v, 1);
        order := g :: !order
      | Some (s, c) -> Hashtbl.replace tbl g (s + v, c + 1))
    pairs;
  Relation.create partial_schema
    (List.rev_map
       (fun g ->
         let s, c = Hashtbl.find tbl g in
         [| v_i g; v_i s; v_i c |])
       !order)

let merge_sum_count partials =
  Engine.Shard.merge_partials ~num_keys:1
    ~aggs:[| Sql.Ast.Sum; Sql.Ast.Count |]
    partials

let test_merge_first_occurrence_order () =
  let p0 = partial_of_pairs [ (5, 10); (2, 20); (5, 1) ] in
  let p1 = partial_of_pairs [ (9, 1); (2, 2); (7, 3) ] in
  let p2 = partial_of_pairs [ (7, 4); (1, 5) ] in
  let merged = merge_sum_count [ p0; p1; p2 ] in
  check_rows "first-occurrence order, sums and counts added"
    [|
      [| v_i 5; v_i 11; v_i 2 |];
      [| v_i 2; v_i 22; v_i 2 |];
      [| v_i 9; v_i 1; v_i 1 |];
      [| v_i 7; v_i 7; v_i 2 |];
      [| v_i 1; v_i 5; v_i 1 |];
    |]
    (Relation.rows merged)

let test_merge_null_and_mixed_cells () =
  let partial rows = Relation.create partial_schema rows in
  (* Null means "this shard saw no rows for the group": absent for
     additive merges, absorbed by min/max *)
  let p0 = partial [ [| v_i 1; Value.Null; v_i 2 |] ] in
  let p1 = partial [ [| v_i 1; v_i 5; Value.Null |] ] in
  let merged = merge_sum_count [ p0; p1 ] in
  check_rows "Null is additive identity"
    [| [| v_i 1; v_i 5; v_i 2 |] |]
    (Relation.rows merged);
  (* Int + Int stays Int; a float operand infects the sum *)
  let q0 = partial [ [| v_i 1; v_i 2; v_i 1 |] ] in
  let q1 = partial [ [| v_i 1; v_f 0.5; v_i 1 |] ] in
  check_rows "mixed operands add as floats"
    [| [| v_i 1; v_f 2.5; v_i 2 |] |]
    (Relation.rows (merge_sum_count [ q0; q1 ]));
  (* min/max merge by Value.compare *)
  let m0 = partial [ [| v_i 1; v_i 7; v_i 3 |] ] in
  let m1 = partial [ [| v_i 1; v_i (-2); Value.Null |] ] in
  let merged =
    Engine.Shard.merge_partials ~num_keys:1
      ~aggs:[| Sql.Ast.Min; Sql.Ast.Max |]
      [ m0; m1 ]
  in
  check_rows "min/max"
    [| [| v_i 1; v_i (-2); v_i 3 |] |]
    (Relation.rows merged)

let test_merge_rejects_avg_and_arity () =
  let p = partial_of_pairs [ (1, 1) ] in
  (* the same key in two partials forces an actual cell merge *)
  (match
     Engine.Shard.merge_partials ~num_keys:1
       ~aggs:[| Sql.Ast.Avg; Sql.Ast.Count |]
       [ p; partial_of_pairs [ (1, 2) ] ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Avg merge should be rejected");
  let narrow =
    Relation.create (Schema.make [ ("__g0", Value.TInt) ]) [ [| v_i 1 |] ]
  in
  match merge_sum_count [ p; narrow ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch should be rejected"

(* ---- merge properties (QCheck) ---- *)

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* rows tagged with the shard that will report them; key space small
   enough that groups routinely span several partials *)
let sharded_rows_gen =
  let* shards = QCheck.Gen.int_range 1 8 in
  let* n = QCheck.Gen.int_range 0 80 in
  let* rows =
    QCheck.Gen.list_size (QCheck.Gen.return n)
      (let* g = QCheck.Gen.int_range 0 6 in
       let* v = QCheck.Gen.int_range (-1000) 1000 in
       let* s = QCheck.Gen.int_range 0 (shards - 1) in
       QCheck.Gen.return (g, v, s))
  in
  QCheck.Gen.return (shards, rows)

let prop_merge_int_exact =
  QCheck.Test.make ~count:200
    ~name:
      "merged SUM/COUNT partials: exact int results in first-occurrence \
       order at any shard count"
    (QCheck.make sharded_rows_gen)
    (fun (shards, rows) ->
      let part s = List.filter_map
          (fun (g, v, s') -> if s' = s then Some (g, v) else None) rows
      in
      let partials = List.init shards (fun s -> partial_of_pairs (part s)) in
      let merged = merge_sum_count partials in
      (* global truth per key *)
      let truth = Hashtbl.create 8 in
      List.iter
        (fun (g, v, _) ->
          let s, c =
            Option.value (Hashtbl.find_opt truth g) ~default:(0, 0)
          in
          Hashtbl.replace truth g (s + v, c + 1))
        rows;
      (* expected key order: first occurrence scanning partials in
         shard order, each partial in its own group order *)
      let seen = Hashtbl.create 8 in
      let expected_order =
        List.concat_map
          (fun p ->
            Relation.rows p |> Array.to_list
            |> List.filter_map (fun row ->
                   match row.(0) with
                   | Value.Int g when not (Hashtbl.mem seen g) ->
                     Hashtbl.add seen g ();
                     Some g
                   | _ -> None))
          partials
      in
      let rows' = Relation.rows merged in
      Alcotest.(check int) "group count" (List.length expected_order)
        (Array.length rows');
      List.iteri
        (fun i g ->
          let s, c = Hashtbl.find truth g in
          check_rows (Printf.sprintf "group %d" g)
            [| [| v_i g; v_i s; v_i c |] |]
            [| rows'.(i) |])
        expected_order;
      true)

(* sixteenths-grid floats: dyadic rationals whose sums are exact, so
   the merged sum must be bit-equal to any single-shard association *)
let sixteenths_gen =
  let* shards = QCheck.Gen.int_range 2 8 in
  let* n = QCheck.Gen.int_range 0 80 in
  let* rows =
    QCheck.Gen.list_size (QCheck.Gen.return n)
      (let* g = QCheck.Gen.int_range 0 4 in
       let* k = QCheck.Gen.int_range (-64) 64 in
       let* s = QCheck.Gen.int_range 0 (shards - 1) in
       QCheck.Gen.return (g, float_of_int k /. 16.0, s))
  in
  QCheck.Gen.return (shards, rows)

let float_partial_of pairs =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (g, v) ->
      match Hashtbl.find_opt tbl g with
      | None ->
        Hashtbl.add tbl g v;
        order := g :: !order
      | Some s -> Hashtbl.replace tbl g (s +. v))
    pairs;
  Relation.create
    (Schema.make [ ("__g0", Value.TInt); ("__a0", Value.TFloat) ])
    (List.rev !order |> List.map (fun g -> [| v_i g; v_f (Hashtbl.find tbl g) |]))

let prop_merge_sixteenths_bitwise =
  QCheck.Test.make ~count:200
    ~name:"sixteenths-grid float SUMs merge bit-equal to single-shard"
    (QCheck.make sixteenths_gen)
    (fun (shards, rows) ->
      let pairs_of s =
        List.filter_map
          (fun (g, v, s') -> if s' = s then Some (g, v) else None)
          rows
      in
      let merged =
        Engine.Shard.merge_partials ~num_keys:1 ~aggs:[| Sql.Ast.Sum |]
          (List.init shards (fun s -> float_partial_of (pairs_of s)))
      in
      let single =
        float_partial_of (List.map (fun (g, v, _) -> (g, v)) rows)
      in
      check_same_bag "sharded sum = single-shard sum" single merged;
      true)

(* ---- end-to-end: sharded = unsharded ---- *)

let e2e_queries =
  [
    "select t0.v from t0 where t0.v >= 1";
    "select t1.w, t0.v from t1, t0 where t1.fk = t0.id";
    "select distinct t0.v from t0";
    "select t0.v, count(*), sum(t1.w), min(t1.w), max(t1.w) from t0, t1 \
     where t1.fk = t0.id group by t0.v";
    "select t0.v, count(*) from t0, t1 where t1.fk = t0.id group by t0.v \
     having count(*) >= 1 order by t0.v";
    "select t0.v, sum(t0.prob) from t0 group by t0.v order by t0.v";
  ]

let test_query_matches_unsharded () =
  let dirty = dirty_db () in
  let base = base_of dirty in
  List.iter
    (fun shards ->
      let s = Engine.Shard.create ~base ~shards dirty in
      List.iter
        (fun sql ->
          let q = parse sql in
          let unsharded = Engine.Database.query_ast base q in
          match Engine.Shard.query_ast s q with
          | None -> Alcotest.failf "should be shardable: %s" sql
          | Some sharded ->
            check_same_bag
              (Printf.sprintf "shards=%d: %s" shards sql)
              unsharded sharded)
        e2e_queries;
      (* ORDER BY over unique group keys fixes the row order exactly *)
      let q =
        parse
          "select t0.v, count(*) from t0, t1 where t1.fk = t0.id \
           group by t0.v order by t0.v"
      in
      match Engine.Shard.query_ast s q with
      | None -> Alcotest.fail "ordered aggregate should be shardable"
      | Some sharded ->
        check_same_relation
          (Printf.sprintf "shards=%d ordered" shards)
          (Engine.Database.query_ast base q)
          sharded)
    [ 1; 2; 4; 8 ]

let test_query_within_cancel_and_stop () =
  let s = session ~shards:4 () in
  let q = parse "select t1.w, t0.v from t1, t0 where t1.fk = t0.id" in
  (match Engine.Shard.query_ast_within s q with
  | None -> Alcotest.fail "join should be shardable"
  | Some (_, { Engine.Database.truncated; cancelled }) ->
    Alcotest.(check bool) "not truncated" false truncated;
    Alcotest.(check bool) "not cancelled" false cancelled);
  let tripped = Engine.Cancel.create () in
  Engine.Cancel.cancel tripped;
  match Engine.Shard.query_ast_within ~cancel:tripped s q with
  | None -> Alcotest.fail "join should be shardable"
  | Some (_, { Engine.Database.cancelled; _ }) ->
    Alcotest.(check bool) "tripped token surfaces" true cancelled

(* ---- ROADMAP 1b regression: many-group chunked aggregation ---- *)

let test_many_group_chunked_aggregate () =
  (* 12k groups of off-grid floats: group-hash-partitioned chunked
     aggregation feeds each group's accumulator in row order, so row
     and chunked executors (at any jobs) agree bit for bit *)
  let n_groups = 12_000 in
  let rows =
    List.concat_map
      (fun g ->
        [
          [| v_i g; v_f (0.1 +. (float_of_int g *. 0.001)) |];
          [| v_i g; v_f (0.3 +. (float_of_int (g mod 97) *. 0.007)) |];
        ])
      (List.init n_groups Fun.id)
  in
  let engine = Engine.Database.create () in
  Engine.Database.add_relation engine ~name:"t"
    (Relation.create
       (Schema.make [ ("g", Value.TInt); ("v", Value.TFloat) ])
       rows);
  let sql =
    "select g, count(*), sum(v), min(v), max(v) from t group by g"
  in
  let config ?(chunked = true) jobs =
    { Engine.Planner.default_config with jobs; chunked }
  in
  let row =
    Engine.Database.query ~config:(config ~chunked:false 1) engine sql
  in
  Alcotest.(check int) "group count" n_groups (Relation.cardinality row);
  check_same_relation "chunked jobs=1 = row" row
    (Engine.Database.query ~config:(config 1) engine sql);
  check_same_relation "chunked jobs=4 = row" row
    (Engine.Database.query ~config:(config 4) engine sql)

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "clusters stay whole" `Quick
            test_partition_clusters_whole;
          Alcotest.test_case "create rejects shards < 1" `Quick
            test_create_rejects_bad_shards;
          Alcotest.test_case "overlay swaps one table" `Quick
            test_overlay_swaps_one_table;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "fragment codec" `Quick test_fragment_codec;
          Alcotest.test_case "partial codec" `Quick test_partial_codec;
          Alcotest.test_case "fallback class" `Quick test_plan_fallbacks;
          Alcotest.test_case "partition table choice" `Quick
            test_partition_table_choice;
        ] );
      ( "merge",
        [
          Alcotest.test_case "first-occurrence order" `Quick
            test_merge_first_occurrence_order;
          Alcotest.test_case "null and mixed cells" `Quick
            test_merge_null_and_mixed_cells;
          Alcotest.test_case "rejects Avg and arity mismatch" `Quick
            test_merge_rejects_avg_and_arity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_int_exact; prop_merge_sixteenths_bitwise ] );
      ( "end to end",
        [
          Alcotest.test_case "sharded = unsharded at 1/2/4/8" `Quick
            test_query_matches_unsharded;
          Alcotest.test_case "stop flags propagate" `Quick
            test_query_within_cancel_and_stop;
        ] );
      ( "chunked aggregation",
        [
          Alcotest.test_case "12k groups row = chunked (ROADMAP 1b)" `Quick
            test_many_group_chunked_aggregate;
        ] );
    ]
