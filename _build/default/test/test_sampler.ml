(* Tests for the Monte-Carlo sampler (non-rewritable queries) and the
   SUM-moment computations. *)

open Dirty

let v_s s = Value.String s

let session () = Conquer.Clean.create (Fixtures.figure2_db ())

(* ---- sampling candidates ---- *)

let test_sample_candidate_shape () =
  let db = Fixtures.figure2_db () in
  let rng = Random.State.make [| 1 |] in
  let sampled = Conquer.Sampler.sample_candidate rng db in
  Alcotest.(check int) "two tables" 2 (List.length sampled);
  List.iter
    (fun (name, rel) ->
      let table = Dirty_db.find_table db name in
      Alcotest.(check int)
        (name ^ ": one row per cluster")
        (Cluster.num_clusters table.clustering)
        (Relation.cardinality rel))
    sampled

let test_sample_candidate_frequencies () =
  (* the o2 cluster is a fair coin: both tuples should appear in
     roughly half the samples *)
  let db = Fixtures.figure2_db () in
  let rng = Random.State.make [| 2 |] in
  let n = 2000 in
  let t2 = ref 0 in
  for _ = 1 to n do
    let sampled = Conquer.Sampler.sample_candidate rng db in
    let orders = List.assoc "orders" sampled in
    Relation.iter
      (fun row ->
        if Value.equal row.(0) (v_s "o2") && Value.equal row.(1) (Value.Int 12)
        then incr t2)
      orders
  done;
  let freq = float_of_int !t2 /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "t2 frequency %.3f near 0.5" freq)
    true
    (freq > 0.45 && freq < 0.55)

(* ---- estimates on the running example ---- *)

let test_sampler_on_example7 () =
  (* q3 is outside the rewritable class; the sampler estimates its true
     clean answer (c1, 0.3) without candidate enumeration *)
  let s = session () in
  let result = Conquer.Sampler.answers ~seed:7 ~samples:4000 s Fixtures.q3 in
  match Fixtures.answer_prob result [ v_s "c1" ] with
  | None -> Alcotest.fail "c1 not estimated"
  | Some _ ->
    (* the probability column is second-to-last here (std_error last);
       recompute from the row *)
    let row = Relation.get result 0 in
    let p = Option.get (Value.to_float row.(1)) in
    Alcotest.(check bool)
      (Printf.sprintf "estimate %.3f near 0.3" p)
      true
      (Float.abs (p -. 0.3) < 0.03);
    let se = Option.get (Value.to_float row.(2)) in
    Alcotest.(check bool) "standard error sane" true (se > 0.0 && se < 0.02)

let test_sampler_matches_rewriting () =
  (* on a rewritable query the estimates converge to the exact clean
     probabilities *)
  let s = session () in
  let exact = Conquer.Clean.answers s Fixtures.q2 in
  let sampled = Conquer.Sampler.answers ~seed:11 ~samples:4000 s Fixtures.q2 in
  Relation.iter
    (fun row ->
      let key = [ row.(0); row.(1) ] in
      let p_exact = Option.get (Fixtures.answer_prob exact key) in
      let matching =
        List.find
          (fun r -> Value.equal r.(0) row.(0) && Value.equal r.(1) row.(1))
          (Relation.row_list sampled)
      in
      let p_est = Option.get (Value.to_float matching.(2)) in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %.3f near exact %.3f" p_est p_exact)
        true
        (Float.abs (p_est -. p_exact) < 0.04))
    exact

let test_sampler_deterministic_by_seed () =
  let s = session () in
  let a = Conquer.Sampler.estimates ~seed:3 ~samples:200 s Fixtures.q1 in
  let b = Conquer.Sampler.estimates ~seed:3 ~samples:200 s Fixtures.q1 in
  Alcotest.(check int) "same support" (List.length a) (List.length b);
  List.iter2
    (fun (x : Conquer.Sampler.estimate) (y : Conquer.Sampler.estimate) ->
      Fixtures.check_float "same estimate" x.probability y.probability)
    a b

let test_sampler_rejects_zero_samples () =
  let s = session () in
  match Conquer.Sampler.estimates ~samples:0 s Fixtures.q1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "samples=0 accepted"

let test_sampler_certain_answer () =
  let s = session () in
  let ests = Conquer.Sampler.estimates ~seed:5 ~samples:300 s Fixtures.q1 in
  (* c1 qualifies in every candidate: estimate exactly 1, stderr 0 *)
  let c1 =
    List.find (fun (e : Conquer.Sampler.estimate) -> Value.equal e.row.(0) (v_s "c1")) ests
  in
  Fixtures.check_float "certain estimate" 1.0 c1.probability;
  Fixtures.check_float "zero stderr" 0.0 c1.std_error;
  Alcotest.(check int) "present in all samples" 300 c1.occurrences

(* ---- SUM moments ---- *)

let test_sum_moments_hand_computed () =
  let s = session () in
  let m =
    Conquer.Distribution.sum_moments s
      "select sum(balance) from customer where balance > 10000"
  in
  (* E = 20000*.7 + 30000*.3 + 27000*.2 = 28400.
     Cluster c1: E[X] = 23000 (balance always qualifies), E[X^2] =
     .7*20000^2+.3*30000^2 = 5.5e8; Var_c1 = 5.5e8 - 5.29e8 = 2.1e7.
     Cluster c2: E[X] = 5400, E[X^2] = .2*27000^2 = 1.458e8;
     Var_c2 = 1.458e8 - 2.916e7 = 1.1664e8. *)
  Fixtures.check_float "mean" 28_400.0 m.mean;
  Fixtures.check_float ~eps:1e-3 "variance" (2.1e7 +. 1.1664e8) m.variance;
  Fixtures.check_float ~eps:1e-6 "std dev" (Float.sqrt m.variance) m.std_dev

let test_sum_moments_match_expected () =
  let s = session () in
  let m =
    Conquer.Distribution.sum_moments s "select sum(balance) from customer"
  in
  let e =
    Conquer.Expected.answers s "select sum(balance) from customer"
  in
  Fixtures.check_float "mean agrees with E[SUM]"
    (Option.get (Value.to_float (Relation.get e 0).(0)))
    m.mean

let test_sum_moments_oracle () =
  (* brute-force over the 8 candidates of the figure 2 database *)
  let s = session () in
  let db = Fixtures.figure2_db () in
  let sql = "select sum(balance) from customer where balance > 25000" in
  let m = Conquer.Distribution.sum_moments s sql in
  let q = Sql.Parser.parse_query sql in
  let engine = Engine.Database.create () in
  List.iter
    (fun (t : Dirty_db.table) ->
      Engine.Database.add_relation engine ~name:t.name t.relation)
    (Dirty_db.tables db);
  let plan = Engine.Database.plan engine q in
  let mean = ref 0.0 and second = ref 0.0 in
  Conquer.Candidates.fold db
    (fun () sel prob ->
      List.iter
        (fun (name, rel) -> Engine.Database.add_relation engine ~name rel)
        (Conquer.Candidates.candidate_relations db sel);
      let result = Engine.Database.run_plan engine plan in
      let v =
        Option.value ~default:0.0 (Value.to_float (Relation.get result 0).(0))
      in
      mean := !mean +. (prob *. v);
      second := !second +. (prob *. v *. v))
    ();
  Fixtures.check_float ~eps:1e-6 "mean matches oracle" !mean m.mean;
  Fixtures.check_float ~eps:1e-3 "variance matches oracle"
    (!second -. (!mean *. !mean))
    m.variance

let test_sum_moments_rejections () =
  let s = session () in
  (match
     Conquer.Distribution.sum_moments s
       "select sum(o.quantity) from orders o, customer c where o.cidfk = c.id"
   with
  | exception Conquer.Distribution.Not_supported _ -> ()
  | _ -> Alcotest.fail "join accepted");
  match Conquer.Distribution.sum_moments s "select id from customer" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-sum select accepted"

let () =
  Alcotest.run "sampler"
    [
      ( "candidate sampling",
        [
          Alcotest.test_case "shape" `Quick test_sample_candidate_shape;
          Alcotest.test_case "frequencies" `Quick test_sample_candidate_frequencies;
        ] );
      ( "estimates",
        [
          Alcotest.test_case "example 7 estimated" `Quick test_sampler_on_example7;
          Alcotest.test_case "matches the rewriting" `Quick
            test_sampler_matches_rewriting;
          Alcotest.test_case "seed determinism" `Quick
            test_sampler_deterministic_by_seed;
          Alcotest.test_case "zero samples rejected" `Quick
            test_sampler_rejects_zero_samples;
          Alcotest.test_case "certain answers" `Quick test_sampler_certain_answer;
        ] );
      ( "sum moments",
        [
          Alcotest.test_case "hand-computed" `Quick test_sum_moments_hand_computed;
          Alcotest.test_case "matches E[SUM]" `Quick
            test_sum_moments_match_expected;
          Alcotest.test_case "oracle" `Quick test_sum_moments_oracle;
          Alcotest.test_case "rejections" `Quick test_sum_moments_rejections;
        ] );
    ]
