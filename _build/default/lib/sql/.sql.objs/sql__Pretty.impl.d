lib/sql/pretty.ml: Ast Buffer Dirty Format List Option Printf String
