(* A syscall-level I/O shim with deterministic fault injection.

   All store persistence (and the CSV/.tbl readers) route their file
   operations through this module instead of the stdlib channels.  In
   production the shim is pass-through: every operation performs the
   real syscall, plus one atomic counter increment — negligible next
   to the I/O itself.

   For testing, a schedule of faults can be armed.  Operations are
   numbered from the last [reset]; when an operation's index (or its
   per-kind index, for write/read-targeted faults) matches an armed
   entry, the corresponding failure is simulated:

   - [Fail_write]   the write raises a transient I/O error (EIO-ish)
   - [Enospc]       the write raises a permanent out-of-space error
   - [Torn_write k] only the first [k] bytes of the payload reach the
                    file, then a transient error is raised
   - [Short_read k] the read silently returns only the first [k] bytes
                    (observed as data corruption, not as an error)
   - [Crash]        the process "dies" at this exact syscall boundary:
                    the operation does NOT happen, {!Crashed} is
                    raised, and every subsequent state-changing
                    operation is silently suppressed until [reset] —
                    cleanup handlers unwinding past the crash cannot
                    repair the disk, exactly like a real kill -9.

   The shim is write-through (no userspace buffering), so the simulated
   crash model is precise: everything written before the crash point is
   on disk, nothing after.  What it does not model is page-cache loss
   after a missing fsync — the [Torn_write] fault approximates that.

   The schedule, the counters, and the trace are process-global and
   mutex-guarded; the chaos harness is single-threaded, and production
   code only touches the fast path. *)

type fault =
  | Fail_write
  | Enospc
  | Torn_write of int
  | Short_read of int
  | Crash

type op =
  | Open_out
  | Write
  | Fsync
  | Close_out
  | Rename
  | Open_in
  | Read
  | Remove
  | Mkdir

let op_name = function
  | Open_out -> "open_out"
  | Write -> "write"
  | Fsync -> "fsync"
  | Close_out -> "close"
  | Rename -> "rename"
  | Open_in -> "open_in"
  | Read -> "read"
  | Remove -> "remove"
  | Mkdir -> "mkdir"

exception Crashed

exception
  Io_error of { op : op; path : string; msg : string; transient : bool }

let () =
  Printexc.register_printer (function
    | Crashed -> Some "Fault.Io.Crashed: simulated crash at syscall boundary"
    | Io_error { op; path; msg; transient } ->
      Some
        (Printf.sprintf "Fault.Io.Io_error: %s %s: %s (%s)" (op_name op) path
           msg
           (if transient then "transient" else "permanent"))
    | _ -> None)

let m_faults_injected =
  Telemetry.Metrics.counter "fault.io.faults_injected"
    ~help:"simulated I/O failures triggered by the armed schedule"

(* a fault is keyed either on the absolute operation index or on the
   index within one kind of operation (the "nth write") *)
type trigger = At_op of int | At_write of int | At_read of int

type state = {
  lock : Mutex.t;
  mutable armed : (trigger * fault) list;
  mutable ops : int;
  mutable writes : int;
  mutable reads : int;
  mutable crashed : bool;
  mutable recording : bool;
  mutable trace : (int * op * string) list; (* reversed *)
  mutable injected : int;
}

let st =
  {
    lock = Mutex.create ();
    armed = [];
    ops = 0;
    writes = 0;
    reads = 0;
    crashed = false;
    recording = false;
    trace = [];
    injected = 0;
  }

(* true while any schedule/trace machinery is active; production stays
   on the fast path (plain counter bump, no lock) *)
let active = Atomic.make false

let with_lock f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let reset ?(record = false) () =
  with_lock (fun () ->
      st.armed <- [];
      st.ops <- 0;
      st.writes <- 0;
      st.reads <- 0;
      st.crashed <- false;
      st.recording <- record;
      st.trace <- [];
      st.injected <- 0;
      Atomic.set active record)

let arm schedule =
  with_lock (fun () ->
      st.armed <- st.armed @ List.map (fun (i, f) -> (At_op i, f)) schedule;
      Atomic.set active true)

let arm_nth_write n fault =
  with_lock (fun () ->
      st.armed <- st.armed @ [ (At_write n, fault) ];
      Atomic.set active true)

let arm_nth_read n fault =
  with_lock (fun () ->
      st.armed <- st.armed @ [ (At_read n, fault) ];
      Atomic.set active true)

let ops () = with_lock (fun () -> st.ops)
let crashed () = with_lock (fun () -> st.crashed)
let injected () = with_lock (fun () -> st.injected)
let trace () = with_lock (fun () -> List.rev st.trace)

let trace_cap = 20_000

(* Number the operation, record it, and decide its fate.  Returns the
   fault the *caller* must apply ([Torn_write]/[Short_read]); raises
   for the error faults; marks the process dead for [Crash]. *)
let check opk path : fault option =
  if not (Atomic.get active) then None
  else
    let decision =
      with_lock (fun () ->
          if st.crashed then `After_crash
          else begin
            let n = st.ops in
            st.ops <- st.ops + 1;
            let kind_index =
              match opk with
              | Write ->
                let w = st.writes in
                st.writes <- st.writes + 1;
                Some (`W w)
              | Read ->
                let r = st.reads in
                st.reads <- st.reads + 1;
                Some (`R r)
              | _ -> None
            in
            if st.recording && List.length st.trace < trace_cap then
              st.trace <- (n, opk, path) :: st.trace;
            let matches = function
              | At_op i -> i = n
              | At_write i -> kind_index = Some (`W i)
              | At_read i -> kind_index = Some (`R i)
            in
            match
              List.find_opt (fun (trig, _) -> matches trig) st.armed
            with
            | None -> `Pass
            | Some (_, fault) ->
              st.injected <- st.injected + 1;
              Telemetry.Metrics.inc m_faults_injected;
              if fault = Crash then st.crashed <- true;
              `Fault fault
          end)
    in
    match decision with
    | `Pass -> None
    | `After_crash -> raise Crashed
    | `Fault Crash -> raise Crashed
    | `Fault Fail_write ->
      raise
        (Io_error { op = opk; path; msg = "injected I/O error"; transient = true })
    | `Fault Enospc ->
      raise
        (Io_error
           { op = opk; path; msg = "no space left on device"; transient = false })
    | `Fault (Torn_write _ as f) | `Fault (Short_read _ as f) -> Some f

(* cleanup-path operations are suppressed (not failed) once crashed:
   finalizers unwinding past a simulated crash must neither repair the
   disk nor mask the crash with a second exception *)
let dead () = Atomic.get active && with_lock (fun () -> st.crashed)

(* ---- the I/O surface ---- *)

type writer = {
  mutable fd : Unix.file_descr option;
  w_path : string;
}

let open_out path =
  ignore (check Open_out path);
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  { fd = Some fd; w_path = path }

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

let write w s =
  match w.fd with
  | None -> invalid_arg "Fault.Io.write: writer is closed"
  | Some fd -> (
    match check Write w.w_path with
    | None -> write_all fd s 0 (String.length s)
    | Some (Torn_write k) ->
      write_all fd s 0 (min k (String.length s));
      raise
        (Io_error
           { op = Write; path = w.w_path; msg = "torn write"; transient = true })
    | Some _ -> write_all fd s 0 (String.length s))

let fsync w =
  match w.fd with
  | None -> invalid_arg "Fault.Io.fsync: writer is closed"
  | Some fd ->
    ignore (check Fsync w.w_path);
    Unix.fsync fd

let close w =
  match w.fd with
  | None -> ()
  | Some fd ->
    w.fd <- None;
    if dead () then Unix.close fd
    else begin
      ignore (check Close_out w.w_path);
      Unix.close fd
    end

(* exception-path close: never a fault point, never masks the cause *)
let abort w =
  match w.fd with
  | None -> ()
  | Some fd ->
    w.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rename src dst =
  ignore (check Rename (src ^ " -> " ^ dst));
  Sys.rename src dst

let remove path =
  if dead () then ()
  else begin
    ignore (check Remove path);
    Sys.remove path
  end

let mkdir path perm =
  ignore (check Mkdir path);
  Sys.mkdir path perm

(* Durability of a rename needs the parent directory's entry synced
   too; some filesystems reject fsync on a directory fd, which is as
   good as it gets — swallow that. *)
let fsync_dir path =
  ignore (check Fsync path);
  match Unix.openfile path [ O_RDONLY; O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let read_file path =
  ignore (check Open_in path);
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match check Read path with
  | Some (Short_read k) -> String.sub content 0 (min k (String.length content))
  | _ -> content

(* ---- seedable random schedules (CI chaos mode) ---- *)

let seed_from_env () =
  Option.bind (Sys.getenv_opt "CONQUER_FAULT_SEED") (fun s ->
      int_of_string_opt (String.trim s))

let random_schedule ~seed ~ops:n =
  let rng = Random.State.make [| seed; 0x10ad; n |] in
  if n <= 0 then []
  else begin
    let faults =
      [|
        (fun () -> Fail_write);
        (fun () -> Enospc);
        (fun () -> Torn_write (Random.State.int rng 64));
        (fun () -> Short_read (Random.State.int rng 64));
        (fun () -> Crash);
      |]
    in
    let k = 1 + Random.State.int rng 3 in
    List.init k (fun _ ->
        ( Random.State.int rng n,
          faults.(Random.State.int rng (Array.length faults)) () ))
  end
