test/test_expected.ml: Alcotest Array Conquer Dirty Dirty_db Fixtures List Option Printf Random Relation Schema Sql String Tpch Value
