lib/engine/database.mli: Dirty Exec Index Plan Planner Sql Stats
