test/test_tpch.ml: Alcotest Array Cluster Conquer Dirty Dirty_db Filename Fixtures Fun Hashtbl Lazy List Option Printf Relation Schema String Sys Tpch Value
