examples/aggregates.mli:
