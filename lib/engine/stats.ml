open Dirty

type histogram = { bounds : float array; depth : float }

type column_stats = {
  distinct : int;
  nulls : int;
  min : Value.t option;
  max : Value.t option;
  histogram : histogram option;
}

let histogram_buckets = 32

let build_histogram values =
  (* equi-depth over the numeric image; [values] are non-null *)
  let numeric =
    Array.of_seq
      (Seq.filter_map Value.to_float (Array.to_seq values))
  in
  let n = Array.length numeric in
  if n < 2 then None
  else begin
    Array.sort Float.compare numeric;
    let buckets = min histogram_buckets n in
    let depth = float_of_int n /. float_of_int buckets in
    let bounds =
      Array.init buckets (fun i ->
          let pos =
            min (n - 1)
              (int_of_float (Float.round (float_of_int (i + 1) *. depth)) - 1)
          in
          numeric.(max 0 pos))
    in
    Some { bounds; depth }
  end

let range_fraction hist ?lo ?hi () =
  let bounds = hist.bounds in
  let buckets = Array.length bounds in
  if buckets = 0 then 0.0
  else begin
    let low = Option.value ~default:Float.neg_infinity lo in
    let high = Option.value ~default:Float.infinity hi in
    if high <= low then 0.0
    else begin
      (* fraction of mass at or below x, linear within buckets *)
      let cdf x =
        if x < bounds.(0) then 0.0
        else if x >= bounds.(buckets - 1) then 1.0
        else begin
          (* binary search for the bucket containing x: the smallest i
             with bounds.(i) >= x.  This probe sits on the planner's
             selectivity path, so it must not be O(buckets). *)
          let rec find lo hi =
            (* invariant: bounds.(hi) >= x and bounds.(lo - 1) < x *)
            if lo >= hi then hi
            else
              let mid = (lo + hi) / 2 in
              if bounds.(mid) >= x then find lo mid else find (mid + 1) hi
          in
          let i = find 0 (buckets - 1) in
          let lower = if i = 0 then bounds.(0) else bounds.(i - 1) in
          let upper = bounds.(i) in
          let within =
            if upper <= lower then 1.0 else (x -. lower) /. (upper -. lower)
          in
          (float_of_int i +. Float.max 0.0 (Float.min 1.0 within))
          /. float_of_int buckets
        end
      in
      Float.max 0.0 (cdf high -. cdf low)
    end
  end

type t = { rows : int; columns : (string * column_stats) list }

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let analyze_column rel name =
  let values = Relation.column rel name in
  let seen = Vtbl.create 64 in
  let nulls = ref 0 in
  let mn = ref None and mx = ref None in
  Array.iter
    (fun v ->
      if Value.is_null v then incr nulls
      else begin
        Vtbl.replace seen v ();
        (match !mn with
        | None -> mn := Some v
        | Some m -> if Value.compare v m < 0 then mn := Some v);
        match !mx with
        | None -> mx := Some v
        | Some m -> if Value.compare v m > 0 then mx := Some v
      end)
    values;
  {
    distinct = Vtbl.length seen;
    nulls = !nulls;
    min = !mn;
    max = !mx;
    histogram = build_histogram values;
  }

let analyze rel =
  let names = Schema.names (Relation.schema rel) in
  {
    rows = Relation.cardinality rel;
    columns = List.map (fun n -> (n, analyze_column rel n)) names;
  }

let column t name = Option.map snd (List.find_opt (fun (n, _) -> n = name) t.columns)

(* Textbook default selectivities. *)
let default_eq = 0.1
let default_range = 1.0 /. 3.0
let default_like = 0.25
let default_other = 0.5

let unqualified (c : Sql.Ast.column) = c.name

let column_histogram stats c =
  Option.bind
    (Option.bind stats (fun s -> column s (unqualified c)))
    (fun cs -> cs.histogram)

let rec selectivity stats (e : Sql.Ast.expr) =
  let clamp x = Float.min 1.0 (Float.max 0.0 x) in
  let range_est c ~lo ~hi =
    match column_histogram stats c with
    | Some hist -> clamp (range_fraction hist ?lo ?hi ())
    | None -> default_range
  in
  match e with
  | Binop (And, a, b) -> clamp (selectivity stats a *. selectivity stats b)
  | Binop (Or, a, b) ->
    let sa = selectivity stats a and sb = selectivity stats b in
    clamp (sa +. sb -. (sa *. sb))
  | Unop (Not, a) -> clamp (1.0 -. selectivity stats a)
  | Binop (Eq, Col c, Lit _) | Binop (Eq, Lit _, Col c) -> (
    match Option.bind stats (fun s -> column s (unqualified c)) with
    | Some { distinct; _ } when distinct > 0 -> 1.0 /. float_of_int distinct
    | _ -> default_eq)
  (* range predicates on a column against a literal: use the
     equi-depth histogram when available *)
  | Binop ((Lt | Le), Col c, Lit v) | Binop ((Gt | Ge), Lit v, Col c) -> (
    match Value.to_float v with
    | Some x -> range_est c ~lo:None ~hi:(Some x)
    | None -> default_range)
  | Binop ((Gt | Ge), Col c, Lit v) | Binop ((Lt | Le), Lit v, Col c) -> (
    match Value.to_float v with
    | Some x -> range_est c ~lo:(Some x) ~hi:None
    | None -> default_range)
  | Between (Col c, Lit lo, Lit hi) -> (
    match Value.to_float lo, Value.to_float hi with
    | Some l, Some h -> range_est c ~lo:(Some l) ~hi:(Some h)
    | _ -> default_range)
  | Binop ((Lt | Le | Gt | Ge), _, _) | Between (_, _, _) -> default_range
  | Like _ | Not_like _ -> default_like
  | In_list (Col c, values) -> (
    match Option.bind stats (fun s -> column s (unqualified c)) with
    | Some { distinct; _ } when distinct > 0 ->
      clamp (float_of_int (List.length values) /. float_of_int distinct)
    | _ -> clamp (default_eq *. float_of_int (List.length values)))
  | Binop (Neq, _, _) -> 0.9
  | Is_null _ -> 0.05
  | Is_not_null _ -> 0.95
  | _ -> default_other
