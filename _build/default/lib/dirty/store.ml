let manifest_name = "manifest.csv"

let save dir db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let manifest =
    [ "name"; "id_attr"; "prob_attr" ]
    :: List.map
         (fun (t : Dirty_db.table) -> [ t.name; t.id_attr; t.prob_attr ])
         (Dirty_db.tables db)
  in
  let oc = open_out (Filename.concat dir manifest_name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun fields ->
          output_string oc (Csv.render_line fields);
          output_char oc '\n')
        manifest);
  List.iter
    (fun (t : Dirty_db.table) ->
      Csv.write_file (Filename.concat dir (t.name ^ ".csv")) t.relation)
    (Dirty_db.tables db)

let load ?(validate = true) dir =
  let manifest_path = Filename.concat dir manifest_name in
  let rows = Csv.read_file manifest_path in
  let entries =
    match rows with
    | [ "name"; "id_attr"; "prob_attr" ] :: entries -> entries
    | _ -> raise (Sys_error (manifest_path ^ ": malformed manifest header"))
  in
  List.fold_left
    (fun db entry ->
      match entry with
      | [ name; id_attr; prob_attr ] ->
        let relation = Csv.load_file (Filename.concat dir (name ^ ".csv")) in
        Dirty_db.add_table db
          (Dirty_db.make_table ~validate ~name ~id_attr ~prob_attr relation)
      | _ -> raise (Sys_error (manifest_path ^ ": malformed manifest row")))
    Dirty_db.empty entries
