(** Retry with capped exponential backoff.

    [with_retry f] runs [f], retrying on failures the classifier deems
    transient, sleeping [base_backoff * 2^i] (capped at [max_backoff])
    between attempts.  Permanent failures propagate immediately; when
    every attempt fails transiently, {!Gave_up} wraps the last error
    (a single-attempt policy re-raises the error itself).

    The sleep function and the classifier are injectable so tests can
    verify attempt counts and the exact backoff sequence without
    sleeping. *)

type policy = {
  attempts : int;  (** total tries, including the first (min 1) *)
  base_backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** backoff ceiling, seconds *)
  jitter : float;
      (** jitter factor in [0, 1]: the sleep after failed attempt [i]
          is drawn uniformly from [[(1-jitter)*b, b]] where [b] is
          {!backoff}[ policy i] — 0 is the deterministic schedule, 1
          (the default) is full jitter [U[0, b]], which keeps a crowd
          of clients retrying a shed server from thundering back in
          lockstep *)
}

val default_policy : policy
(** 3 attempts, 50ms base, 2s cap, full jitter. *)

val set_policy : policy -> unit
(** Set the process-wide policy used when [with_retry] is called
    without an explicit one (the CLI's [--retries]/[--io-backoff-ms]
    flags). *)

val policy : unit -> policy

exception Gave_up of { attempts : int; last : exn }

val backoff : policy -> int -> float
(** [backoff p i] is the capped-exponential ceiling of the sleep after
    failed attempt [i] (0-based), before jitter. *)

val jittered_backoff : ?rng:(unit -> float) -> policy -> int -> float
(** The actual sleep after failed attempt [i]: {!backoff} scaled into
    [[(1-jitter)*b, b]] by a draw from [rng] (default: [Random.float],
    injectable so tests can pin the draw; the result is clamped into
    [[0, 1)] before use). *)

val with_retry :
  ?policy:policy ->
  ?classify:(exn -> [ `Transient | `Permanent ]) ->
  ?sleep:(float -> unit) ->
  ?rng:(unit -> float) ->
  (unit -> 'a) ->
  'a
(** The default classifier treats {!Io.Io_error} with
    [transient = true], [Sys_error], and interrupted/EIO Unix errors
    as transient; everything else — including {!Io.Crashed} and
    ENOSPC — as permanent. *)
