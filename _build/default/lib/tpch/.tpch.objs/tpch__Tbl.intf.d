lib/tpch/tbl.mli: Dirty
