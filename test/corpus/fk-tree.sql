SELECT r1.id, r0.id
FROM t1 r1, t0 r0
WHERE r1.fkt0 = r0.id
