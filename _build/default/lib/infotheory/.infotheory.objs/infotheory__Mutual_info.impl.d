lib/infotheory/mutual_info.ml: Dcf Dist Float List
