(* Helpers shared by every test suite. *)

(* Recursive removal: store directories now hold generations,
   journals, and possibly nested debris, so the old "remove the
   entries, then rmdir" cleanup (which broke on any subdirectory)
   lives here in a form that actually recurses. *)
let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "conquer" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Simulate a torn (non-atomic) write: keep only the first [keep]
   bytes of the file, cutting mid-row. *)
let truncate_file path ~keep =
  let s = read_bytes path in
  write_bytes path (String.sub s 0 (min keep (String.length s)))

(* Order-insensitive structural image of a dirty database, for
   exact (rendered-value) equality checks across save/load/replay. *)
let db_fingerprint db =
  List.map
    (fun (t : Dirty.Dirty_db.table) ->
      ( t.name,
        t.id_attr,
        t.prob_attr,
        Dirty.Schema.names (Dirty.Relation.schema t.relation),
        List.sort compare
          (List.map
             (fun row ->
               Array.to_list (Array.map Dirty.Value.to_string row))
             (Array.to_list (Dirty.Relation.rows t.relation))) ))
    (Dirty.Dirty_db.tables db)
