lib/engine/plan.ml: Format List Sql String
