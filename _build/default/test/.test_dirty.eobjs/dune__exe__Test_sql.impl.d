test/test_sql.ml: Alcotest Ast Dirty Lexer List Option Parser Pretty Sql Tpch
