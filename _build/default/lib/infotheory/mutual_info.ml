let log2 x = Float.log x /. Float.log 2.0

let marginal clusters = Dist.mix clusters

let mutual_information clusters =
  let pv = marginal clusters in
  List.fold_left
    (fun acc (pc, cond) ->
      if pc <= 0.0 then acc
      else
        acc
        +. Dist.fold
             (fun sym p acc ->
               if p <= 0.0 then acc
               else acc +. (pc *. p *. log2 (p /. Dist.prob pv sym)))
             cond 0.0)
    0.0 clusters

let clustering_of_dcfs ~total dcfs =
  List.map (fun (d : Dcf.t) -> (d.weight /. total, d.dist)) dcfs

let merge_loss ~total a b ~rest =
  let before = clustering_of_dcfs ~total (a :: b :: rest) in
  let after = clustering_of_dcfs ~total (Dcf.merge a b :: rest) in
  mutual_information before -. mutual_information after
