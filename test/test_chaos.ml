(* Chaos harness: deterministic fault injection.

   The headline property: for EVERY operation in a [Store.save] trace,
   crashing exactly there and reloading yields a database that is
   byte-for-byte the old snapshot or the new one — never a mix — and
   per-cluster probabilities still sum to 1.  Exercised exhaustively
   over a fixed pair of databases and probabilistically over random
   databases and crash points, plus a randomized multi-fault schedule
   driven by CONQUER_FAULT_SEED.

   Also here: the retry/backoff laws (injected clock, satellite of the
   fault work) and query cancellation deadlines. *)

open Dirty

let v_i i = Value.Int i

(* ---- databases with 1/16-grain probabilities ----

   Sixteenths are exactly representable as floats and survive the CSV
   round-trip bit-for-bit, so "old or new, never a mix" can compare
   rendered values exactly and cluster sums come back to exactly 1.
   The generators live in [Fuzz.Dbgen] (store family), shared with the
   differential fuzzing harness so both suites fuzz the same space. *)

let table_of_clusters = Fuzz.Dbgen.store_table_of_clusters
let db_of_tables = Fuzz.Dbgen.db_of_tables

let fixed_old =
  db_of_tables
    [
      table_of_clusters "alpha"
        [ ("a1", [ (1, 10); (2, 6) ]); ("a2", [ (3, 16) ]) ];
      table_of_clusters "beta" [ ("b1", [ (7, 8); (8, 8) ]) ];
    ]

let fixed_new =
  db_of_tables
    [
      table_of_clusters "alpha" [ ("a1", [ (1, 16) ]) ];
      table_of_clusters "beta"
        [ ("b1", [ (7, 4); (9, 12) ]); ("b2", [ (5, 16) ]) ];
      table_of_clusters "gamma" [ ("g1", [ (0, 16) ]) ];
    ]

(* ---- snapshot comparison ---- *)

let db_fingerprint db =
  List.map
    (fun (t : Dirty_db.table) ->
      ( t.name,
        t.id_attr,
        t.prob_attr,
        Schema.names (Relation.schema t.relation),
        List.sort compare
          (List.map
             (fun row -> Array.to_list (Array.map Value.to_string row))
             (Array.to_list (Relation.rows t.relation))) ))
    (Dirty_db.tables db)

let db_equal a b = db_fingerprint a = db_fingerprint b

let cluster_sums_ok db =
  List.for_all
    (fun (t : Dirty_db.table) ->
      let schema = Relation.schema t.relation in
      let idi = Schema.index_of schema t.id_attr in
      let pi = Schema.index_of schema t.prob_attr in
      let sums = Hashtbl.create 8 in
      Relation.iter
        (fun row ->
          let key = Value.to_string row.(idi) in
          let p = Option.value (Value.to_float row.(pi)) ~default:nan in
          Hashtbl.replace sums key
            (p +. Option.value (Hashtbl.find_opt sums key) ~default:0.0))
        t.relation;
      Hashtbl.fold
        (fun _ sum ok -> ok && Float.abs (sum -. 1.0) < 1e-9)
        sums true)
    (Dirty_db.tables db)

(* ---- the crash-at-op harness ---- *)

(* operation count of "save db_new over a store holding db_old",
   learned from a recorded dry run in a scratch directory *)
let count_save_ops db_old db_new =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir db_old;
      Fault.Io.reset ~record:true ();
      Store.save dir db_new;
      let n = Fault.Io.ops () in
      Fault.Io.reset ();
      n)

(* crash at operation [k] of the save, then check the invariants:
   the reloaded db is exactly old or new, cluster sums are intact, and
   a recovery sweep does not change what loads *)
let crash_and_check ?(faults = fun k -> [ (k, Fault.Io.Crash) ]) db_old db_new k
    =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir db_old;
      Fault.Io.reset ();
      Fault.Io.arm (faults k);
      (match Store.save dir db_new with () -> () | exception _ -> ());
      Fault.Io.reset ();
      let loaded = Store.load dir in
      if not (db_equal loaded db_old || db_equal loaded db_new) then
        Alcotest.failf "fault at op %d: loaded db is neither old nor new" k;
      if not (cluster_sums_ok loaded) then
        Alcotest.failf "fault at op %d: cluster probability sums broken" k;
      ignore (Store.recover dir);
      let again = Store.load dir in
      if not (db_equal again loaded) then
        Alcotest.failf "fault at op %d: recover changed the loaded snapshot" k;
      if Store.recover dir <> [] then
        Alcotest.failf "fault at op %d: recover is not idempotent" k)

let test_crash_every_op () =
  let n = count_save_ops fixed_old fixed_new in
  Alcotest.(check bool) "save has a meaningful trace" true (n > 10);
  for k = 0 to n - 1 do
    crash_and_check fixed_old fixed_new k
  done

let test_crash_every_op_first_save () =
  (* no prior snapshot: the store directory must end up empty-loading
     (legacy Sys_error) or holding exactly the new db *)
  let n =
    Testutil.with_temp_dir (fun dir ->
        Fault.Io.reset ~record:true ();
        Store.save dir fixed_new;
        let n = Fault.Io.ops () in
        Fault.Io.reset ();
        n)
  in
  for k = 0 to n - 1 do
    Testutil.with_temp_dir (fun dir ->
        Fault.Io.reset ();
        Fault.Io.arm [ (k, Fault.Io.Crash) ];
        (match Store.save dir fixed_new with
        | () -> ()
        | exception _ -> ());
        Fault.Io.reset ();
        match Store.load dir with
        | db ->
          if not (db_equal db fixed_new) then
            Alcotest.failf "crash at op %d: partial first save became visible"
              k
        | exception Sys_error _ -> ())
  done

(* ---- QCheck: random databases, random crash points ---- *)

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

let db_gen = Fuzz.Dbgen.store_db_gen

let chaos_case_gen =
  let* db_old = db_gen in
  let* db_new = db_gen in
  let* crash_point = QCheck.Gen.int_range 0 10_000 in
  QCheck.Gen.return (db_old, db_new, crash_point)

let prop_crash_recovery_atomic =
  QCheck.Test.make ~count:220
    ~name:"crash during save: reload is exactly old or new"
    (QCheck.make chaos_case_gen)
    (fun (db_old, db_new, crash_point) ->
      let n = count_save_ops db_old db_new in
      crash_and_check db_old db_new (crash_point mod n);
      true)

(* ---- write-path crash matrix: delta commit and compaction ----

   Same discipline as the save matrix: crash at EVERY I/O operation of
   a delta append+commit, reload, and require exactly the base state
   or the updated state — never a mix, never a torn replay.  The delta
   record stores weights at full precision, so the updated comparison
   target is the in-memory [Delta.apply] image. *)

let fixed_batch =
  [
    Delta.Reassign
      { table = "alpha"; cluster = Value.String "a1"; weights = [| 0.25; 0.75 |] };
    Delta.Insert
      {
        table = "beta";
        row = [| Value.String "b2"; v_i 5; Value.Float (4.0 /. 16.0) |];
      };
    Delta.Delete { table = "alpha"; cluster = Value.String "a2"; member = 0 };
  ]

let count_delta_ops db batch =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir db;
      Fault.Io.reset ~record:true ();
      ignore (Store.commit_delta dir batch);
      let n = Fault.Io.ops () in
      Fault.Io.reset ();
      n)

let crash_delta_and_check ?(faults = fun k -> [ (k, Fault.Io.Crash) ]) db batch
    k =
  let updated = (Delta.apply db batch).Delta.db in
  Testutil.with_temp_dir (fun dir ->
      Store.save dir db;
      Fault.Io.reset ();
      Fault.Io.arm (faults k);
      (match Store.commit_delta dir batch with
      | (_ : int) -> ()
      | exception _ -> ());
      Fault.Io.reset ();
      let loaded = Store.load dir in
      if not (db_equal loaded db || db_equal loaded updated) then
        Alcotest.failf "delta fault at op %d: loaded db is neither base nor updated" k;
      if not (cluster_sums_ok loaded) then
        Alcotest.failf "delta fault at op %d: cluster probability sums broken" k;
      ignore (Store.recover dir);
      let again = Store.load dir in
      if not (db_equal again loaded) then
        Alcotest.failf "delta fault at op %d: recover changed the loaded snapshot" k;
      if Store.recover dir <> [] then
        Alcotest.failf "delta fault at op %d: recover is not idempotent" k)

let test_crash_every_op_delta_commit () =
  let n = count_delta_ops fixed_old fixed_batch in
  Alcotest.(check bool) "delta commit has a meaningful trace" true (n > 5);
  for k = 0 to n - 1 do
    crash_delta_and_check fixed_old fixed_batch k
  done

(* crash at every op of the compacting save over a live delta chain:
   the chain replay and the compacted snapshot describe the same
   database, so the reload must equal it at every crash point, and the
   fallback chain must survive the sweep *)
let test_crash_every_op_compaction () =
  let setup dir =
    Store.save dir fixed_old;
    ignore (Store.commit_delta dir fixed_batch);
    Store.load dir
  in
  let n =
    Testutil.with_temp_dir (fun dir ->
        let current = setup dir in
        Fault.Io.reset ~record:true ();
        Store.save dir current;
        let n = Fault.Io.ops () in
        Fault.Io.reset ();
        n)
  in
  for k = 0 to n - 1 do
    Testutil.with_temp_dir (fun dir ->
        let current = setup dir in
        Fault.Io.reset ();
        Fault.Io.arm [ (k, Fault.Io.Crash) ];
        (match Store.save dir current with () -> () | exception _ -> ());
        Fault.Io.reset ();
        let loaded = Store.load dir in
        if not (db_equal loaded current) then
          Alcotest.failf
            "compaction fault at op %d: loaded db diverged from the chain" k;
        ignore (Store.recover dir);
        if not (db_equal (Store.load dir) current) then
          Alcotest.failf
            "compaction fault at op %d: recover broke the loadable state" k)
  done

(* ---- join-spill chaos (ROADMAP item 5 satellite) ----

   The Grace hash-join spill writes [.spill-*.tmp] partition files
   through [Fault.Io], so every fault the store crash matrix uses
   applies to it too.  The invariants: a faulted spill fails the query
   cleanly (an exception the callers map to exit 4 / HTTP 500 — never
   a wrong answer), the store directory the spill shares stays exactly
   as committed, and [Store.recover] sweeps crash debris idempotently.
   Non-crash faults (Enospc, torn writes) must leave no debris at all:
   the spill's own cleanup still runs. *)

let spill_engine () =
  let engine = Engine.Database.create () in
  let schema = Schema.make [ ("k", Value.TInt); ("v", Value.TInt) ] in
  let rel n off =
    Relation.create schema
      (List.init n (fun i -> [| v_i (i mod 11); v_i (i + off) |]))
  in
  Engine.Database.add_relation engine ~name:"a" (rel 40 0);
  Engine.Database.add_relation engine ~name:"b" (rel 40 100);
  engine

let spill_query =
  Sql.Parser.parse_query "select a.v, b.v from a, b where a.k = b.k"

(* spill after 5 build rows, partitions living inside the store dir *)
let spill_config dir =
  {
    Engine.Planner.default_config with
    spill_rows = Some 5;
    spill_dir = Some dir;
  }

let rendered_rows rel =
  Relation.rows rel |> Array.to_list
  |> List.map (fun row -> Array.to_list (Array.map Value.to_string row))
  |> List.sort compare

let no_spill_debris dir =
  Array.for_all
    (fun f -> not (String.length f >= 7 && String.sub f 0 7 = ".spill-"))
    (Sys.readdir dir)

let count_spill_ops () =
  Testutil.with_temp_dir (fun dir ->
      let engine = spill_engine () in
      Fault.Io.reset ~record:true ();
      ignore (Engine.Database.query_ast ~config:(spill_config dir) engine
                spill_query);
      let n = Fault.Io.ops () in
      Fault.Io.reset ();
      n)

let test_spill_join_agrees () =
  Testutil.with_temp_dir (fun dir ->
      Store.save dir fixed_old;
      let engine = spill_engine () in
      let plain = Engine.Database.query_ast engine spill_query in
      let spilled =
        Engine.Database.query_ast ~config:(spill_config dir) engine
          spill_query
      in
      Alcotest.(check (list (list string)))
        "spilled join = in-memory join (bag)"
        (rendered_rows plain) (rendered_rows spilled);
      Alcotest.(check bool) "clean spill leaves no debris" true
        (no_spill_debris dir))

(* crash at every syscall of a spilled join sharing the store dir *)
let test_spill_crash_every_op () =
  let n = count_spill_ops () in
  Alcotest.(check bool) "spill has a meaningful trace" true (n > 5);
  let aborted = ref 0 in
  for k = 0 to n - 1 do
    Testutil.with_temp_dir (fun dir ->
        Fault.Io.reset ();
        Store.save dir fixed_old;
        let engine = spill_engine () in
        let plain = Engine.Database.query_ast engine spill_query in
        Fault.Io.arm [ (k, Fault.Io.Crash) ];
        (match
           Engine.Database.query_ast ~config:(spill_config dir) engine
             spill_query
         with
        | rel ->
          (* late crash points land inside the best-effort cleanup,
             after the answer is complete — it must still be right *)
          if rendered_rows rel <> rendered_rows plain then
            Alcotest.failf "crash at op %d: wrong answer" k
        | exception _ -> incr aborted);
        Fault.Io.reset ();
        (* the store is untouched by the dead spill *)
        let loaded = Store.load dir in
        if not (db_equal loaded fixed_old) then
          Alcotest.failf "spill crash at op %d: store changed" k;
        if not (cluster_sums_ok loaded) then
          Alcotest.failf "spill crash at op %d: cluster sums broken" k;
        (* recover sweeps the debris, idempotently *)
        ignore (Store.recover dir);
        if not (no_spill_debris dir) then
          Alcotest.failf "spill crash at op %d: recover left debris" k;
        if Store.recover dir <> [] then
          Alcotest.failf "spill crash at op %d: recover not idempotent" k;
        if not (db_equal (Store.load dir) fixed_old) then
          Alcotest.failf "spill crash at op %d: recover changed the store" k;
        (* and the healed directory runs the same query to completion *)
        let after =
          Engine.Database.query_ast ~config:(spill_config dir) engine
            spill_query
        in
        if rendered_rows after <> rendered_rows plain then
          Alcotest.failf "spill crash at op %d: rerun diverged" k)
  done;
  Alcotest.(check bool) "crashes mid-spill abort the query" true (!aborted > 0)

(* non-crash faults: the process lives on, so the spill's own cleanup
   must remove every partition file and the query must fail with the
   I/O error, not a wrong answer *)
let test_spill_enospc_and_torn_writes () =
  let check_fault name arm =
    Testutil.with_temp_dir (fun dir ->
        Fault.Io.reset ();
        Store.save dir fixed_old;
        let engine = spill_engine () in
        arm ();
        (match
           Engine.Database.query_ast ~config:(spill_config dir) engine
             spill_query
         with
        | _ -> Alcotest.failf "%s: spilled query succeeded" name
        | exception Fault.Io.Io_error _ -> ()
        | exception e ->
          Alcotest.failf "%s: unexpected exception %s" name
            (Printexc.to_string e));
        Fault.Io.reset ();
        Alcotest.(check bool) (name ^ ": no debris") true
          (no_spill_debris dir);
        if not (db_equal (Store.load dir) fixed_old) then
          Alcotest.failf "%s: store changed" name;
        if Store.recover dir <> [] then
          Alcotest.failf "%s: recover found debris it should not" name)
  in
  (* the disk filling up under several different partition writes *)
  List.iter
    (fun nth ->
      check_fault
        (Printf.sprintf "enospc at write %d" nth)
        (fun () -> Fault.Io.arm_nth_write nth Fault.Io.Enospc))
    [ 0; 3; 7 ];
  (* a torn partition write surfaces as a torn-frame read error *)
  List.iter
    (fun nth ->
      check_fault
        (Printf.sprintf "torn write %d" nth)
        (fun () -> Fault.Io.arm_nth_write nth (Fault.Io.Torn_write 3)))
    [ 0; 2; 5 ]

(* random databases, random grid batches, random crash points *)
let delta_chaos_case_gen =
  let* db = db_gen in
  let* batch, _ = Fuzz.Updategen.batch_gen db ~len:2 in
  let* crash_point = QCheck.Gen.int_range 0 10_000 in
  QCheck.Gen.return (db, batch, crash_point)

let prop_crash_delta_commit_atomic =
  QCheck.Test.make ~count:120
    ~name:"crash during delta commit: reload is exactly base or updated"
    (QCheck.make delta_chaos_case_gen)
    (fun (db, batch, crash_point) ->
      QCheck.assume (batch <> []);
      let n = count_delta_ops db batch in
      crash_delta_and_check db batch (crash_point mod n);
      true)

let test_randomized_schedule_delta () =
  let seed =
    match Fault.Io.seed_from_env () with Some s -> s | None -> 1337
  in
  Printf.printf "delta chaos schedule seed: CONQUER_FAULT_SEED=%d\n%!" seed;
  let n = count_delta_ops fixed_old fixed_batch in
  for round = 0 to 19 do
    crash_delta_and_check
      ~faults:(fun _ -> Fault.Io.random_schedule ~seed:(seed + round) ~ops:n)
      fixed_old fixed_batch round
  done

(* ---- randomized multi-fault schedules (CONQUER_FAULT_SEED) ---- *)

let test_randomized_schedule () =
  let seed =
    match Fault.Io.seed_from_env () with Some s -> s | None -> 421
  in
  (* log the seed so a CI failure is reproducible *)
  Printf.printf "chaos schedule seed: CONQUER_FAULT_SEED=%d\n%!" seed;
  let n = count_save_ops fixed_old fixed_new in
  for round = 0 to 19 do
    crash_and_check
      ~faults:(fun _ ->
        Fault.Io.random_schedule ~seed:(seed + round) ~ops:n)
      fixed_old fixed_new round
  done

(* ---- retry/backoff laws (injected clock) ---- *)

let transient_error () =
  Fault.Io.Io_error
    { op = Fault.Io.Write; path = "x"; msg = "injected"; transient = true }

let retry_case_gen =
  let* attempts = QCheck.Gen.int_range 1 6 in
  let* failures = QCheck.Gen.int_range 0 (attempts - 1) in
  let* base_ms = QCheck.Gen.int_range 1 100 in
  let* cap_ms = QCheck.Gen.int_range 1 400 in
  QCheck.Gen.return (attempts, failures, base_ms, cap_ms)

let prop_retry_backoff_schedule =
  QCheck.Test.make ~count:200
    ~name:"retry: attempt count and backoff sequence are exactly as scheduled"
    (QCheck.make retry_case_gen)
    (fun (attempts, failures, base_ms, cap_ms) ->
      let policy =
        {
          Fault.Retry.attempts;
          base_backoff = float_of_int base_ms /. 1000.0;
          max_backoff = float_of_int cap_ms /. 1000.0;
          jitter = 0.0 (* exact-sequence assertions need no jitter *);
        }
      in
      let calls = ref 0 in
      let sleeps = ref [] in
      let result =
        Fault.Retry.with_retry ~policy
          ~sleep:(fun s -> sleeps := s :: !sleeps)
          (fun () ->
            incr calls;
            if !calls <= failures then raise (transient_error ());
            !calls)
      in
      let expected_sleeps =
        List.init failures (fun i ->
            Float.min policy.max_backoff
              (policy.base_backoff *. (2.0 ** float_of_int i)))
      in
      result = failures + 1
      && !calls = failures + 1
      && List.rev !sleeps = expected_sleeps)

let prop_retry_gives_up =
  QCheck.Test.make ~count:100
    ~name:"retry: exhausted attempts give up after the scheduled sleeps"
    (QCheck.make (QCheck.Gen.int_range 1 6))
    (fun attempts ->
      let policy =
        {
          Fault.Retry.attempts;
          base_backoff = 0.01;
          max_backoff = 0.04;
          jitter = 0.0;
        }
      in
      let calls = ref 0 in
      let sleeps = ref 0 in
      match
        Fault.Retry.with_retry ~policy
          ~sleep:(fun _ -> incr sleeps)
          (fun () ->
            incr calls;
            raise (transient_error ()))
      with
      | _ -> false
      | exception Fault.Retry.Gave_up { attempts = a; _ } ->
        attempts > 1 && a = attempts && !calls = attempts
        && !sleeps = attempts - 1
      | exception Fault.Io.Io_error _ ->
        (* a single-attempt policy re-raises the original error *)
        attempts = 1 && !calls = 1 && !sleeps = 0)

(* jittered delays: for any jitter factor and any RNG draw, the sleep
   stays within [0, cap] and never exceeds the deterministic ceiling
   for that attempt *)
let prop_retry_jitter_within_cap =
  let gen =
    let* attempts = QCheck.Gen.int_range 2 6 in
    let* base_ms = QCheck.Gen.int_range 1 100 in
    let* cap_ms = QCheck.Gen.int_range 1 400 in
    let* jitter = QCheck.Gen.float_bound_inclusive 1.0 in
    let* draw = QCheck.Gen.float_bound_inclusive 1.0 in
    QCheck.Gen.return (attempts, base_ms, cap_ms, jitter, draw)
  in
  QCheck.Test.make ~count:300
    ~name:"retry: jittered delays stay within [0, cap] and under the ceiling"
    (QCheck.make gen)
    (fun (attempts, base_ms, cap_ms, jitter, draw) ->
      let policy =
        {
          Fault.Retry.attempts;
          base_backoff = float_of_int base_ms /. 1000.0;
          max_backoff = float_of_int cap_ms /. 1000.0;
          jitter;
        }
      in
      List.for_all
        (fun i ->
          let d = Fault.Retry.jittered_backoff ~rng:(fun () -> draw) policy i in
          let ceiling = Fault.Retry.backoff policy i in
          0.0 <= d && d <= policy.max_backoff +. 1e-12 && d <= ceiling +. 1e-12)
        (List.init (attempts - 1) Fun.id))

(* with jitter off, the jittered delay is exactly the deterministic
   schedule, whatever the RNG says *)
let prop_retry_no_jitter_is_deterministic =
  QCheck.Test.make ~count:100
    ~name:"retry: jitter=0 reproduces the deterministic backoff exactly"
    (QCheck.make (QCheck.Gen.float_bound_inclusive 1.0))
    (fun draw ->
      let policy = { Fault.Retry.default_policy with jitter = 0.0 } in
      List.for_all
        (fun i ->
          Fault.Retry.jittered_backoff ~rng:(fun () -> draw) policy i
          = Fault.Retry.backoff policy i)
        [ 0; 1; 2; 3; 7 ])

(* ---- cancellation deadlines ---- *)

(* a deadline that has already passed (zero, negative, or at/below the
   2ms watchdog tick) must trip the token before the wrapped function
   runs — not one watchdog tick later *)
let test_expired_deadline_trips_before_run () =
  List.iter
    (fun seconds ->
      let tok = Engine.Cancel.create () in
      let observed_tripped = ref false in
      let ran = ref false in
      (try
         Engine.Cancel.with_deadline ~seconds tok (fun () ->
             ran := true;
             observed_tripped := Engine.Cancel.cancelled tok;
             Engine.Cancel.check tok)
       with Engine.Cancel.Cancelled _ -> ());
      Alcotest.(check bool)
        (Printf.sprintf "wrapped function still runs (deadline %gs)" seconds)
        true !ran;
      Alcotest.(check bool)
        (Printf.sprintf "token tripped before the function ran (deadline %gs)"
           seconds)
        true !observed_tripped;
      Alcotest.(check bool)
        (Printf.sprintf "token still tripped after (deadline %gs)" seconds)
        true
        (Engine.Cancel.cancelled tok))
    [ 0.0; -1.0; 0.001; 0.002 ]

let test_parallel_cancel_within_deadline () =
  let tok = Engine.Cancel.create () in
  let t0 = Unix.gettimeofday () in
  (match
     Engine.Cancel.with_deadline ~seconds:0.1 tok (fun () ->
         (* 64 x 20ms on 4 domains = ~320ms of work, cancelled at 100ms *)
         Engine.Parallel.run ~cancel:tok ~jobs:4 64 (fun _ ->
             Unix.sleepf 0.02))
   with
  | () -> Alcotest.fail "parallel region outran its deadline uncancelled"
  | exception Engine.Cancel.Cancelled _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "cancelled within 2x deadline (%.0fms)" (elapsed *. 1000.))
    true (elapsed < 0.2)

(* a database whose cross product is far too large to finish within
   the deadline, so cancellation must interrupt it mid-operator *)
let big_cross_db () =
  let engine = Engine.Database.create () in
  let schema = Schema.make [ ("k", Value.TInt); ("v", Value.TInt) ] in
  let rel n =
    Relation.create schema (List.init n (fun i -> [| v_i i; v_i (i * 7) |]))
  in
  Engine.Database.add_relation engine ~name:"a" (rel 3000);
  Engine.Database.add_relation engine ~name:"b" (rel 3000);
  engine

let cross_query =
  Sql.Parser.parse_query "select a.v, b.v from a, b where a.v + b.v > -1"

let cancel_config jobs seconds =
  {
    Engine.Planner.default_config with
    jobs;
    max_elapsed = Some seconds;
  }

(* a budgeted query whose time budget is already spent returns an
   empty cancelled partial, through the normal degrading path *)
let test_expired_deadline_query_degrades () =
  let engine = big_cross_db () in
  let rel, { Engine.Database.truncated; cancelled } =
    Engine.Database.query_ast_within ~config:(cancel_config 4 0.0) engine
      cross_query
  in
  Alcotest.(check bool) "cancelled" true cancelled;
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check int) "no rows produced" 0 (Relation.cardinality rel)

let test_query_cancelled_partial_within_deadline () =
  let engine = big_cross_db () in
  let deadline = 0.3 in
  let t0 = Unix.gettimeofday () in
  let rel, { Engine.Database.truncated; cancelled } =
    Engine.Database.query_ast_within
      ~config:(cancel_config 4 deadline)
      engine cross_query
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "cancelled" true cancelled;
  Alcotest.(check bool) "not row-truncated" false truncated;
  Alcotest.(check bool) "partial, not the full cross product" true
    (Relation.cardinality rel < 3000 * 3000);
  Alcotest.(check bool)
    (Printf.sprintf "returned within 2x deadline (%.0fms)" (elapsed *. 1000.))
    true
    (elapsed < 2.0 *. deadline)

let test_query_cancelled_raise_within_deadline () =
  let engine = big_cross_db () in
  let deadline = 0.3 in
  let t0 = Unix.gettimeofday () in
  (match
     Engine.Database.query_ast ~config:(cancel_config 4 deadline) engine
       cross_query
   with
  | _ -> Alcotest.fail "cross product outran its deadline uncancelled"
  | exception Engine.Cancel.Cancelled _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "raised within 2x deadline (%.0fms)" (elapsed *. 1000.))
    true
    (elapsed < 2.0 *. deadline)

let test_cancellation_counter () =
  Telemetry.Control.with_enabled @@ fun () ->
  let before =
    Telemetry.Metrics.count
      (Telemetry.Metrics.counter "engine.cancel.cancellations")
  in
  let tok = Engine.Cancel.create () in
  Engine.Cancel.cancel ~reason:"test" tok;
  Engine.Cancel.cancel ~reason:"again" tok;
  (* second cancel of the same token is a no-op *)
  let after =
    Telemetry.Metrics.count
      (Telemetry.Metrics.counter "engine.cancel.cancellations")
  in
  Alcotest.(check int) "one cancellation counted" (before + 1) after;
  Alcotest.(check (option string)) "first reason wins" (Some "test")
    (Engine.Cancel.reason tok)

let () =
  let qcheck = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "chaos"
    [
      ( "store-crash",
        [
          Alcotest.test_case "crash at every op of a re-save" `Quick
            test_crash_every_op;
          Alcotest.test_case "crash at every op of a first save" `Quick
            test_crash_every_op_first_save;
          qcheck prop_crash_recovery_atomic;
          Alcotest.test_case "randomized fault schedules" `Quick
            test_randomized_schedule;
        ] );
      ( "write-path-crash",
        [
          Alcotest.test_case "crash at every op of a delta commit" `Quick
            test_crash_every_op_delta_commit;
          Alcotest.test_case "crash at every op of a compacting save" `Quick
            test_crash_every_op_compaction;
          qcheck prop_crash_delta_commit_atomic;
          Alcotest.test_case "randomized fault schedules over delta commits"
            `Quick test_randomized_schedule_delta;
        ] );
      ( "join-spill",
        [
          Alcotest.test_case "spilled join agrees, no debris" `Quick
            test_spill_join_agrees;
          Alcotest.test_case "crash at every op of a spilled join" `Quick
            test_spill_crash_every_op;
          Alcotest.test_case "enospc and torn partition writes" `Quick
            test_spill_enospc_and_torn_writes;
        ] );
      ( "retry",
        [
          qcheck prop_retry_backoff_schedule;
          qcheck prop_retry_gives_up;
          qcheck prop_retry_jitter_within_cap;
          qcheck prop_retry_no_jitter_is_deterministic;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "parallel region cancelled within 2x deadline"
            `Quick test_parallel_cancel_within_deadline;
          Alcotest.test_case "expired deadline trips before the function runs"
            `Quick test_expired_deadline_trips_before_run;
          Alcotest.test_case "expired deadline degrades to empty partial"
            `Quick test_expired_deadline_query_degrades;
          Alcotest.test_case "budgeted query degrades to cancelled partial"
            `Quick test_query_cancelled_partial_within_deadline;
          Alcotest.test_case "raise-mode query cancelled within 2x deadline"
            `Quick test_query_cancelled_raise_within_deadline;
          Alcotest.test_case "cancellations counter and first-reason-wins"
            `Quick test_cancellation_counter;
        ] );
    ]
