lib/prob/resolve.ml: Array Cluster Dirty Dirty_db Float Hashtbl List Relation Schema Value
