lib/dirty/value.mli: Format
