open Dirty

let of_rows matrix rows =
  match rows with
  | [] -> invalid_arg "Representative.of_rows: empty cluster"
  | _ -> Infotheory.Dcf.merge_many (List.map (Matrix.row_dcf matrix) rows)

let all matrix clustering =
  List.rev
    (Cluster.fold
       (fun id members acc -> (id, of_rows matrix members) :: acc)
       clustering [])

let modal_tuple matrix (dcf : Infotheory.Dcf.t) =
  let interning = Matrix.interning matrix in
  let num_attrs = List.length (Matrix.attrs matrix) in
  let best = Array.make num_attrs None in
  Infotheory.Dist.fold
    (fun sym p () ->
      let attr = Interning.attr_of interning sym in
      match best.(attr) with
      | Some (_, bp) when bp >= p -> ()
      | _ -> best.(attr) <- Some (sym, p))
    dcf.Infotheory.Dcf.dist ();
  Array.to_list
    (Array.map
       (function
         | None -> Value.Null
         | Some (sym, _) -> Interning.value_of interning sym)
       best)

let pp_table matrix fmt reps =
  let interning = Matrix.interning matrix in
  let num_syms = Interning.size interning in
  Format.fprintf fmt "%-12s |c|" "cluster";
  for sym = 0 to num_syms - 1 do
    Format.fprintf fmt " %12s"
      (Value.to_string (Interning.value_of interning sym))
  done;
  Format.fprintf fmt "@\n";
  List.iter
    (fun (id, (dcf : Infotheory.Dcf.t)) ->
      Format.fprintf fmt "%-12s %3g" (Value.to_string id) dcf.weight;
      for sym = 0 to num_syms - 1 do
        Format.fprintf fmt " %12.3f" (Infotheory.Dist.prob dcf.dist sym)
      done;
      Format.fprintf fmt "@\n")
    reps
