test/test_distribution.mli:
