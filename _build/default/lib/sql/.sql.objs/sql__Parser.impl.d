lib/sql/parser.ml: Array Ast Dirty Lexer List Option Printf
